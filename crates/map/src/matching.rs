//! Boolean matching: binding target implementations to cut functions.
//!
//! Matches are stored in a flat [`MatchArena`] parallel to the cut arena:
//! one contiguous buffer of [`PreparedMatch`]es with two spans (positive
//! and negative phase) per node. Each match references the cut it was
//! derived from by [`CutId`] instead of carrying a copy of the leaf list.
//!
//! The per-cut work is target-specific ([`Target::match_cut`]): the ASIC
//! target shrinks each cut function and probes the library's match
//! index; the k-LUT target accepts any function whose true support fits
//! in a LUT. The driver (node iteration, span sealing, the parallel
//! chunking scheme) is shared.
//!
//! Matching can run against a [`SessionCache`] (see `slap-cache`): the
//! `(root, leaves) → truth table → per-phase bindings` chain is a pure
//! function of the AIG and library, so a session that maps the same AIG
//! repeatedly replays it from the cache instead of re-simulating the
//! cone and re-probing the index. Cold and cached paths emit through the
//! same helper, so their output is bit-identical by construction.

use std::collections::BTreeMap;

use slap_aig::cone::{cut_function_with, ConeScratch};
use slap_aig::{Aig, NodeId, Tt};
use slap_cache::{FrozenResolve, ResolveInfo, SessionCache, SessionDelta};
use slap_cell::{GateId, MatchEntry, MatchIndex};
use slap_cuts::{Cut, CutArena, CutId, MAX_CUT_SIZE};

use crate::target::{lut_gate, Target};

/// One realizable implementation of a node phase: a gate plus, for each
/// gate pin, the AIG node and polarity feeding it. Plain-old-data — the
/// connected leaves live in an inline array, and the originating cut is
/// referenced by id into the [`CutArena`] the matches were computed from
/// ([`CutId::STRUCTURAL`] for the injected structural fallback cut).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PreparedMatch {
    /// The library gate.
    pub gate: GateId,
    /// The cut this match was derived from (as enumerated, pre-shrink) —
    /// recorded so training-data generation can label "cuts used to
    /// deliver the mapping".
    pub cut: CutId,
    leaves: [(NodeId, bool, u8); MAX_CUT_SIZE],
    num_leaves: u8,
}

impl PreparedMatch {
    /// The `(node, complemented, pin)` triple per connected leaf; `pin`
    /// indexes the gate's pins.
    #[inline]
    pub fn leaves(&self) -> &[(NodeId, bool, u8)] {
        &self.leaves[..self.num_leaves as usize]
    }
}

/// All prepared matches of a circuit: one flat buffer with per-node,
/// per-phase spans (replaces the former `Vec<NodeMatches>` of per-node
/// `Vec` pairs).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MatchArena {
    matches: Vec<PreparedMatch>,
    /// `offsets[2i]..offsets[2i+1]` is node `i`'s positive-phase span and
    /// `offsets[2i+1]..offsets[2i+2]` its negative-phase span; length
    /// `2 * num_nodes + 1`.
    offsets: Vec<u32>,
}

impl MatchArena {
    fn with_nodes(num_nodes: usize) -> MatchArena {
        MatchArena {
            matches: Vec::new(),
            offsets: vec![0; 2 * num_nodes + 1],
        }
    }

    /// The match list of one node phase (`true` = complemented).
    #[inline]
    pub fn of(&self, node: NodeId, complemented: bool) -> &[PreparedMatch] {
        let i = 2 * node.index() + complemented as usize;
        &self.matches[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Every stored match, all nodes and phases.
    pub fn all(&self) -> &[PreparedMatch] {
        &self.matches
    }

    /// Total prepared matches.
    pub fn len(&self) -> usize {
        self.matches.len()
    }

    /// True when no matches are stored.
    pub fn is_empty(&self) -> bool {
        self.matches.is_empty()
    }
}

/// Aggregate statistics of the matching step.
///
/// The four `*_cache_*` / `interned_tts` counters describe session-cache
/// traffic and are zero on cold (cache-less or `SLAP_CACHE=0`) runs. The
/// mapped *outputs* are bit-identical with and without the cache; the
/// cache counters themselves may legitimately differ between thread
/// counts (a sequential warm run can hit entries inserted earlier in the
/// same datagen call, which frozen parallel workers cannot see yet), so
/// equivalence tests compare stats with these fields zeroed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MatchStats {
    /// Cuts exposed to the matcher — the paper's memory-footprint metric.
    pub cuts_considered: usize,
    /// Cuts that produced at least one gate binding (either phase).
    pub cuts_matched: usize,
    /// Structural fallback cuts injected to keep nodes mappable.
    pub structural_added: usize,
    /// Total prepared matches over all nodes and phases.
    pub total_matches: usize,
    /// Match-index lookups that returned at least one gate.
    pub npn_hits: u64,
    /// Match-index lookups that returned nothing.
    pub npn_misses: u64,
    /// Function-cache probes that found the `(root, cut)` pair.
    pub fn_cache_hits: u64,
    /// Function-cache probes that had to simulate the cone.
    pub fn_cache_misses: u64,
    /// Binding-cache probes that replayed prepared gate bindings.
    pub binding_cache_hits: u64,
    /// Truth tables newly interned by this run.
    pub interned_tts: u64,
}

impl MatchStats {
    /// Fraction of index lookups that found a gate (`0.0` when none ran).
    pub fn npn_hit_rate(&self) -> f64 {
        let total = self.npn_hits + self.npn_misses;
        if total == 0 {
            0.0
        } else {
            self.npn_hits as f64 / total as f64
        }
    }

    /// This record with the session-cache counters zeroed — what
    /// equivalence tests compare, since cache traffic (unlike mapped
    /// output) legitimately depends on warm-up history and thread count.
    pub fn without_cache_counters(&self) -> MatchStats {
        MatchStats {
            fn_cache_hits: 0,
            fn_cache_misses: 0,
            binding_cache_hits: 0,
            interned_tts: 0,
            ..*self
        }
    }

    /// Adds another accumulator (all fields are sums, so merging worker
    /// partials in any order gives the sequential totals).
    fn add(&mut self, other: &MatchStats) {
        self.cuts_considered += other.cuts_considered;
        self.cuts_matched += other.cuts_matched;
        self.structural_added += other.structural_added;
        self.total_matches += other.total_matches;
        self.npn_hits += other.npn_hits;
        self.npn_misses += other.npn_misses;
        self.fn_cache_hits += other.fn_cache_hits;
        self.fn_cache_misses += other.fn_cache_misses;
        self.binding_cache_hits += other.binding_cache_hits;
        self.interned_tts += other.interned_tts;
    }

    fn note_cache(&mut self, info: ResolveInfo) {
        self.fn_cache_hits += info.fn_hit as u64;
        self.fn_cache_misses += !info.fn_hit as u64;
        self.binding_cache_hits += info.binding_hit as u64;
        self.interned_tts += info.interned as u64;
    }
}

/// How one matching run talks to the session cache. Public only so the
/// [`Target`] trait can name it in `match_cut`; not part of the stable
/// API surface.
#[doc(hidden)]
pub enum CacheCtx<'c> {
    /// No memoization: every cut takes the cold path.
    Off,
    /// Sequential path: probe and populate in place.
    Mut(&'c mut SessionCache),
    /// Read-only probe with miss recording, for use inside `slap-par`
    /// workers (and for frozen map runs): never mutates the cache, so
    /// many workers can share it without locks.
    Frozen(&'c SessionCache, &'c mut SessionDelta),
}

/// Computes the per-node match lists for every AND node against a
/// [`Target`].
///
/// For each stored cut the target decides which implementations (if any)
/// realize it: the ASIC target computes the cut's local function by cone
/// simulation, shrinks it to its true support, and looks it up (both
/// polarities with one canonical probe) in the match index; the k-LUT
/// target accepts any cut whose true support fits in a LUT. When
/// `add_structural` is set, the structural cut `{fanin0, fanin1}` is
/// additionally matched for nodes whose stored cut list does not contain
/// it — this guarantees every node stays mappable regardless of how
/// aggressive the filtering policy was (any 2-input AND-with-polarities
/// is in the library, and trivially fits any LUT). Such injected matches
/// carry [`CutId::STRUCTURAL`]; consumers reconstruct the cut from the
/// fanins.
pub fn compute_matches<T: Target>(
    aig: &Aig,
    cuts: &CutArena,
    target: &T,
    add_structural: bool,
) -> (MatchArena, MatchStats) {
    compute_matches_ctx(aig, cuts, target, add_structural, CacheCtx::Off)
}

/// [`compute_matches`] with an explicit cache context (the session entry
/// point).
pub(crate) fn compute_matches_ctx<T: Target>(
    aig: &Aig,
    cuts: &CutArena,
    target: &T,
    add_structural: bool,
    mut ctx: CacheCtx<'_>,
) -> (MatchArena, MatchStats) {
    // Normalize a disabled cache to the cold path once, so the per-cut
    // hot loop never re-checks the toggle.
    let enabled = match &ctx {
        CacheCtx::Off => false,
        CacheCtx::Mut(c) => c.enabled(),
        CacheCtx::Frozen(c, _) => c.enabled(),
    };
    if !enabled {
        ctx = CacheCtx::Off;
    }
    // Matching one node is a pure function of `(aig, cuts, target, node)`
    // plus the frozen cache contents, so the node list can be split into
    // contiguous chunks matched in parallel and concatenated in chunk
    // order — bit-identical to the sequential pass for any thread count.
    if slap_par::threads() > 1 && !slap_par::in_worker() && aig.num_ands() > 1 {
        return compute_matches_parallel(aig, cuts, target, add_structural, ctx);
    }
    let mut arena = MatchArena::with_nodes(aig.num_nodes());
    let mut stats = MatchStats::default();
    let mut scratch = MatchScratch::default();
    let mut prev = 0usize;
    for n in aig.and_ids() {
        match_node(
            aig,
            cuts,
            target,
            add_structural,
            n,
            &mut scratch,
            &mut stats,
            &mut ctx,
        );
        // Seal empty spans for the nodes skipped since the last AND node,
        // then this node's two spans.
        let i = 2 * n.index();
        let start = arena.matches.len() as u32;
        for o in &mut arena.offsets[prev + 1..=i] {
            *o = start;
        }
        arena.matches.extend_from_slice(&scratch.pos);
        arena.offsets[i + 1] = arena.matches.len() as u32;
        arena.matches.extend_from_slice(&scratch.neg);
        arena.offsets[i + 2] = arena.matches.len() as u32;
        prev = i + 2;
    }
    let end = arena.matches.len() as u32;
    for o in &mut arena.offsets[prev + 1..] {
        *o = end;
    }
    (arena, stats)
}

/// Matches all cuts of one node (plus the structural fallback when
/// requested) into `scratch.pos` / `scratch.neg`, updating `stats`.
/// Shared by the sequential and parallel paths.
#[allow(clippy::too_many_arguments)]
fn match_node<T: Target>(
    aig: &Aig,
    cuts: &CutArena,
    target: &T,
    add_structural: bool,
    n: NodeId,
    scratch: &mut MatchScratch,
    stats: &mut MatchStats,
    ctx: &mut CacheCtx<'_>,
) {
    let (f0, f1) = aig.fanins(n);
    let structural = Cut::from_leaves(&[f0.node(), f1.node()]);
    let list = cuts.cuts_of(n);
    let has_structural = list.contains(&structural);
    scratch.pos.clear();
    scratch.neg.clear();
    for (id, cut) in cuts.ids_of(n) {
        stats.cuts_considered += 1;
        if target.match_cut(aig, n, cut, id, scratch, stats, ctx) {
            stats.cuts_matched += 1;
        }
    }
    if add_structural && !has_structural {
        stats.structural_added += 1;
        stats.cuts_considered += 1;
        if target.match_cut(aig, n, &structural, CutId::STRUCTURAL, scratch, stats, ctx) {
            stats.cuts_matched += 1;
        }
    }
    stats.total_matches += scratch.pos.len() + scratch.neg.len();
}

/// Chunked parallel matching: the AND-node list is split into one
/// contiguous range per worker; each worker matches its range with
/// private scratch, a private match buffer, private stats, and (when a
/// cache is in play) a frozen view plus a private delta. The buffers are
/// then spliced in chunk (= ascending node) order, which reproduces the
/// sequential arena layout exactly; the stats are sums, so their merge
/// order is immaterial; the deltas are absorbed in chunk order, which
/// reproduces the sequential first-encounter interning order.
fn compute_matches_parallel<T: Target>(
    aig: &Aig,
    cuts: &CutArena,
    target: &T,
    add_structural: bool,
    ctx: CacheCtx<'_>,
) -> (MatchArena, MatchStats) {
    let nodes: Vec<NodeId> = aig.and_ids().collect();
    let ranges = slap_par::split_ranges(nodes.len(), slap_par::threads());
    let chunks: Vec<&[NodeId]> = ranges.into_iter().map(|r| &nodes[r]).collect();
    let shared: Option<&SessionCache> = match &ctx {
        CacheCtx::Off => None,
        CacheCtx::Mut(c) => Some(c),
        CacheCtx::Frozen(c, _) => Some(c),
    };
    let results = slap_par::par_map(&chunks, |_, chunk| {
        let mut scratch = MatchScratch::default();
        let mut stats = MatchStats::default();
        let mut out: Vec<PreparedMatch> = Vec::new();
        let mut spans: Vec<(u32, u32, u32)> = Vec::with_capacity(chunk.len());
        let mut delta = SessionDelta::default();
        {
            let mut local_ctx = match shared {
                None => CacheCtx::Off,
                Some(c) => CacheCtx::Frozen(c, &mut delta),
            };
            for &n in *chunk {
                match_node(
                    aig,
                    cuts,
                    target,
                    add_structural,
                    n,
                    &mut scratch,
                    &mut stats,
                    &mut local_ctx,
                );
                out.extend_from_slice(&scratch.pos);
                out.extend_from_slice(&scratch.neg);
                spans.push((
                    n.index() as u32,
                    scratch.pos.len() as u32,
                    scratch.neg.len() as u32,
                ));
            }
        }
        (out, spans, stats, delta)
    });
    let mut arena = MatchArena::with_nodes(aig.num_nodes());
    let mut stats = MatchStats::default();
    let mut merged = SessionDelta::default();
    let mut prev = 0usize;
    for (out, spans, local, mut delta) in results {
        stats.add(&local);
        merged.append(&mut delta);
        let mut cursor = 0usize;
        for &(node, pos_len, neg_len) in &spans {
            let i = 2 * node as usize;
            let start = arena.matches.len() as u32;
            for o in &mut arena.offsets[prev + 1..=i] {
                *o = start;
            }
            let pos_end = cursor + pos_len as usize;
            let neg_end = pos_end + neg_len as usize;
            arena.matches.extend_from_slice(&out[cursor..pos_end]);
            arena.offsets[i + 1] = arena.matches.len() as u32;
            arena.matches.extend_from_slice(&out[pos_end..neg_end]);
            arena.offsets[i + 2] = arena.matches.len() as u32;
            cursor = neg_end;
            prev = i + 2;
        }
    }
    let end = arena.matches.len() as u32;
    for o in &mut arena.offsets[prev + 1..] {
        *o = end;
    }
    match ctx {
        CacheCtx::Off => {}
        CacheCtx::Mut(cache) => {
            // Absorbing in chunk order re-interns exactly the tables a
            // sequential warm pass would have interned, in the same
            // first-encounter order, so the counter stays thread-count
            // invariant.
            stats.interned_tts += target.absorb_delta(cache, merged);
        }
        CacheCtx::Frozen(_, outer) => outer.append(&mut merged),
    }
    (arena, stats)
}

/// Buffers reused across every [`Target::match_cut`] call of one
/// matching run: the per-node phase lists (match_cut interleaves pos/neg
/// appends, so they cannot go straight into the flat buffer, which needs
/// the positive span contiguous before the negative one), the leaf list
/// of the cut under evaluation, and the cone-simulation scratch. Public
/// only so the [`Target`] trait can name it; the fields stay private.
#[doc(hidden)]
#[derive(Default)]
pub struct MatchScratch {
    pos: Vec<PreparedMatch>,
    neg: Vec<PreparedMatch>,
    leaves: Vec<NodeId>,
    cone: ConeScratch,
}

/// Matches a single cut against the ASIC library, appending prepared
/// matches for both phases into the scratch lists. Returns true if
/// anything matched.
#[allow(clippy::too_many_arguments)]
pub(crate) fn asic_match_cut(
    aig: &Aig,
    root: NodeId,
    cut: &Cut,
    cut_id: CutId,
    index: &MatchIndex,
    scratch: &mut MatchScratch,
    stats: &mut MatchStats,
    ctx: &mut CacheCtx<'_>,
) -> bool {
    scratch.leaves.clear();
    scratch.leaves.extend(cut.leaves());
    if cut.is_trivial_of(root) {
        return false;
    }
    let MatchScratch {
        pos,
        neg,
        leaves,
        cone,
    } = scratch;
    match ctx {
        CacheCtx::Off => {
            let Some((tt, _vol)) = cut_function_with(aig, root, leaves, cone) else {
                return false;
            };
            emit_cold(tt, cut_id, index, leaves, pos, neg, stats)
        }
        CacheCtx::Mut(cache) => {
            let (prep, info) = cache.resolve_mut(aig, root, cut, leaves, index, cone);
            stats.note_cache(info);
            match prep {
                None => false,
                Some(p) => emit_prepared(&p, cut_id, leaves, pos, neg, stats),
            }
        }
        CacheCtx::Frozen(cache, delta) => {
            let (res, info) = cache.resolve_frozen(aig, root, cut, leaves, cone, delta);
            stats.note_cache(info);
            match res {
                FrozenResolve::Known(None) | FrozenResolve::Cold(None) => false,
                FrozenResolve::Known(Some(p)) => emit_prepared(&p, cut_id, leaves, pos, neg, stats),
                FrozenResolve::Cold(Some((tt, _vol))) => {
                    emit_cold(tt, cut_id, index, leaves, pos, neg, stats)
                }
            }
        }
    }
}

/// Matches a single cut against a `k`-input LUT target: any cut whose
/// true support fits in `k` inputs is realizable in both phases by one
/// LUT programmed with the (possibly negated) cut function. Uses only
/// the function half of the session cache — LUT feasibility is a pure
/// property of the truth table, so there are no per-library bindings to
/// replay.
#[allow(clippy::too_many_arguments)]
pub(crate) fn lut_match_cut(
    aig: &Aig,
    root: NodeId,
    cut: &Cut,
    cut_id: CutId,
    k: usize,
    scratch: &mut MatchScratch,
    stats: &mut MatchStats,
    ctx: &mut CacheCtx<'_>,
) -> bool {
    scratch.leaves.clear();
    scratch.leaves.extend(cut.leaves());
    if cut.is_trivial_of(root) {
        return false;
    }
    let MatchScratch {
        pos,
        neg,
        leaves,
        cone,
    } = scratch;
    let resolved = match ctx {
        CacheCtx::Off => {
            cut_function_with(aig, root, leaves, cone).map(|(tt, vol)| (tt, vol as u32))
        }
        CacheCtx::Mut(cache) => {
            let (v, info) = cache.resolve_fn_mut(aig, root, cut, leaves, cone);
            stats.note_cache(info);
            v
        }
        CacheCtx::Frozen(cache, delta) => {
            let (v, info) = cache.resolve_fn_frozen(aig, root, cut, leaves, cone, delta);
            stats.note_cache(info);
            v
        }
    };
    let Some((tt, _vol)) = resolved else {
        return false;
    };
    emit_lut(tt, cut_id, k, leaves, pos, neg, stats)
}

/// LUT finish: shrink the raw function to its support and accept both
/// phases iff the support fits. Counter semantics mirror the ASIC path:
/// a feasibility decision counts one "probe" per phase, and constants
/// (like [`emit_cold`]'s early return) never probe.
fn emit_lut(
    tt: Tt,
    cut_id: CutId,
    k: usize,
    leaves: &[NodeId],
    pos: &mut Vec<PreparedMatch>,
    neg: &mut Vec<PreparedMatch>,
    stats: &mut MatchStats,
) -> bool {
    let mut support = [0usize; Tt::MAX_VARS];
    let (_stt, num_support) = tt.shrink_to_support_into(&mut support);
    if num_support == 0 {
        // Constant function — a strashed AIG never needs this.
        return false;
    }
    if num_support > k {
        stats.npn_misses += 2;
        return false;
    }
    stats.npn_hits += 2;
    let mut match_leaves = [(NodeId::CONST0, false, 0u8); MAX_CUT_SIZE];
    for (i, &s) in support[..num_support].iter().enumerate() {
        match_leaves[i] = (leaves[s], false, i as u8);
    }
    let m = PreparedMatch {
        gate: lut_gate(),
        cut: cut_id,
        leaves: match_leaves,
        num_leaves: num_support as u8,
    };
    pos.push(m);
    neg.push(m);
    true
}

/// Cached finish: replay prepared bindings. The constant-function guard
/// mirrors [`emit_cold`]'s early return — the cold path never probes the
/// index for constants, so the warm path must not count phase probes for
/// them either.
fn emit_prepared(
    p: &slap_cache::Prepared<'_>,
    cut_id: CutId,
    leaves: &[NodeId],
    pos: &mut Vec<PreparedMatch>,
    neg: &mut Vec<PreparedMatch>,
    stats: &mut MatchStats,
) -> bool {
    if p.num_support == 0 {
        return false;
    }
    emit_entries(
        p.pos,
        p.neg,
        &p.support[..p.num_support as usize],
        cut_id,
        leaves,
        pos,
        neg,
        stats,
    )
}

/// Cold finish: shrink the raw function to its support and probe the
/// index once for both phases.
fn emit_cold(
    tt: Tt,
    cut_id: CutId,
    index: &MatchIndex,
    leaves: &[NodeId],
    pos: &mut Vec<PreparedMatch>,
    neg: &mut Vec<PreparedMatch>,
    stats: &mut MatchStats,
) -> bool {
    let mut support = [0usize; Tt::MAX_VARS];
    let (tt, num_support) = tt.shrink_to_support_into(&mut support);
    if num_support == 0 {
        // Constant function — a strashed AIG never needs this.
        return false;
    }
    let mut support8 = [0u8; Tt::MAX_VARS];
    for (d, &s) in support8.iter_mut().zip(&support[..num_support]) {
        *d = s as u8;
    }
    let (pos_entries, neg_entries) = index.matches_both(tt);
    emit_entries(
        pos_entries,
        neg_entries,
        &support8[..num_support],
        cut_id,
        leaves,
        pos,
        neg,
        stats,
    )
}

/// Instantiates the per-phase entry lists of one cut function against a
/// concrete cut occurrence. Cold and cached matching both funnel through
/// here, so their emitted matches (and the npn hit/miss accounting,
/// which is per-phase probe-result emptiness) are identical by
/// construction. A constant function (empty `support`) never reaches
/// this point.
#[allow(clippy::too_many_arguments)]
fn emit_entries(
    pos_entries: &[MatchEntry],
    neg_entries: &[MatchEntry],
    support: &[u8],
    cut_id: CutId,
    leaves: &[NodeId],
    pos: &mut Vec<PreparedMatch>,
    neg: &mut Vec<PreparedMatch>,
    stats: &mut MatchStats,
) -> bool {
    let mut any = false;
    for (phase, entries) in [(false, pos_entries), (true, neg_entries)] {
        if entries.is_empty() {
            stats.npn_misses += 1;
        } else {
            stats.npn_hits += 1;
        }
        for entry in entries {
            let mut match_leaves = [(NodeId::CONST0, false, 0u8); MAX_CUT_SIZE];
            for (i, &leaf_idx) in support.iter().enumerate() {
                let leaf = leaves[leaf_idx as usize];
                match_leaves[i] = (leaf, entry.leaf_complemented(i), entry.pin(i) as u8);
            }
            let m = PreparedMatch {
                gate: entry.gate,
                cut: cut_id,
                leaves: match_leaves,
                num_leaves: support.len() as u8,
            };
            if phase {
                neg.push(m);
            } else {
                pos.push(m);
            }
            any = true;
        }
    }
    any
}

/// Groups matches by gate for reporting (used by explainability
/// tooling). Ordered so serialized reports are stable across runs.
pub fn gate_histogram(matches: &MatchArena) -> BTreeMap<GateId, usize> {
    let mut histo = BTreeMap::new();
    for m in matches.all() {
        *histo.entry(m.gate).or_insert(0) += 1;
    }
    histo
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::target::{AsicTarget, LutTarget};
    use slap_cell::asap7_mini;
    use slap_cuts::{enumerate_cuts, CutConfig, DefaultPolicy};

    fn xor_and_graph() -> Aig {
        let mut aig = Aig::new();
        let a = aig.add_pi();
        let b = aig.add_pi();
        let c = aig.add_pi();
        let x = aig.xor(a, b);
        let f = aig.and(x, c);
        aig.add_po(f);
        aig
    }

    #[test]
    fn every_and_node_gets_matches() {
        let aig = xor_and_graph();
        let lib = asap7_mini();
        let target = AsicTarget::new(&lib);
        let cuts = enumerate_cuts(&aig, &CutConfig::default(), &mut DefaultPolicy::default());
        let (matches, stats) = compute_matches(&aig, &cuts, &target, true);
        for n in aig.and_ids() {
            assert!(
                !matches.of(n, false).is_empty() || !matches.of(n, true).is_empty(),
                "node {n} unmatched"
            );
        }
        assert!(stats.cuts_considered >= cuts.total_cuts());
        assert!(stats.total_matches > 0);
        assert_eq!(stats.total_matches, matches.len());
        assert!(!matches.is_empty());
        assert!(stats.npn_hits > 0);
        assert!(stats.npn_hit_rate() > 0.0 && stats.npn_hit_rate() <= 1.0);
        assert_eq!(MatchStats::default().npn_hit_rate(), 0.0);
        // A cold run never touches a cache.
        assert_eq!(stats.fn_cache_hits + stats.fn_cache_misses, 0);
        assert_eq!(stats.binding_cache_hits + stats.interned_tts, 0);
    }

    #[test]
    fn matches_reference_cuts_by_arena_id() {
        let aig = xor_and_graph();
        let lib = asap7_mini();
        let target = AsicTarget::new(&lib);
        let cuts = enumerate_cuts(&aig, &CutConfig::default(), &mut DefaultPolicy::default());
        let (matches, _) = compute_matches(&aig, &cuts, &target, false);
        for n in aig.and_ids() {
            let span = cuts.span_of(n);
            for m in matches.of(n, false).iter().chain(matches.of(n, true)) {
                // Without structural injection every id must land inside
                // the node's own span of the cut arena.
                assert!(m.cut != CutId::STRUCTURAL);
                let off = m.cut.index() as u32;
                assert!(span.contains(&off), "cut id outside node span");
                // The referenced cut contains every match leaf.
                let cut = cuts.cut(m.cut);
                for &(leaf, _, _) in m.leaves() {
                    assert!(cut.contains(leaf), "match leaf not in referenced cut");
                }
            }
        }
    }

    #[test]
    fn xor_cut_matches_xor_cell() {
        let aig = xor_and_graph();
        let lib = asap7_mini();
        let target = AsicTarget::new(&lib);
        let cuts = enumerate_cuts(&aig, &CutConfig::default(), &mut DefaultPolicy::default());
        let (matches, _) = compute_matches(&aig, &cuts, &target, true);
        // The XOR root (third AND created) should have an XOR2 match.
        let xor_root = aig.and_ids().nth(2).expect("three AND nodes before final");
        let has_xor = matches
            .of(xor_root, false)
            .iter()
            .chain(matches.of(xor_root, true))
            .any(|m| lib.gate(m.gate).name().starts_with("X"));
        assert!(has_xor, "xor node should match an XOR/XNOR cell");
    }

    #[test]
    fn structural_fallback_injected_when_cuts_removed() {
        let aig = xor_and_graph();
        let lib = asap7_mini();
        let target = AsicTarget::new(&lib);
        let mut cuts = enumerate_cuts(&aig, &CutConfig::default(), &mut DefaultPolicy::default());
        cuts.retain_selected(&aig, |_, _| false, false); // drop everything, no restore
        let (matches, stats) = compute_matches(&aig, &cuts, &target, true);
        assert_eq!(stats.structural_added, aig.num_ands());
        for n in aig.and_ids() {
            assert!(!matches.of(n, false).is_empty() && !matches.of(n, true).is_empty());
            for m in matches.of(n, false).iter().chain(matches.of(n, true)) {
                assert_eq!(m.cut, CutId::STRUCTURAL);
            }
        }
    }

    #[test]
    fn match_leaves_reference_cut_leaves() {
        let aig = xor_and_graph();
        let lib = asap7_mini();
        let target = AsicTarget::new(&lib);
        let cuts = enumerate_cuts(&aig, &CutConfig::default(), &mut DefaultPolicy::default());
        let (matches, _) = compute_matches(&aig, &cuts, &target, true);
        for n in aig.and_ids() {
            for m in matches.of(n, false).iter().chain(matches.of(n, true)) {
                let gate = lib.gate(m.gate);
                assert!(m.leaves().len() <= gate.num_pins());
                for &(leaf, _, pin) in m.leaves() {
                    assert!(leaf.index() < n.index(), "leaf after root");
                    assert!((pin as usize) < gate.num_pins());
                }
            }
        }
    }

    #[test]
    fn parallel_matching_is_bit_identical_to_sequential() {
        // Chain several xor/and blocks so there are enough AND nodes to
        // split across workers.
        let mut aig = Aig::new();
        let mut acc = aig.add_pi();
        for _ in 0..6 {
            let b = aig.add_pi();
            let c = aig.add_pi();
            let x = aig.xor(acc, b);
            acc = aig.and(x, c);
        }
        aig.add_po(acc);
        let lib = asap7_mini();
        let target = AsicTarget::new(&lib);
        slap_par::set_threads(1);
        let cuts = enumerate_cuts(&aig, &CutConfig::default(), &mut DefaultPolicy::default());
        let (seq, seq_stats) = compute_matches(&aig, &cuts, &target, true);
        for t in [2, 4, 8] {
            slap_par::set_threads(t);
            let (par, par_stats) = compute_matches(&aig, &cuts, &target, true);
            assert_eq!(par, seq, "t={t}: arena diverged");
            assert_eq!(par_stats, seq_stats, "t={t}: stats diverged");
        }
        slap_par::set_threads(1);
    }

    #[test]
    fn cached_matching_is_bit_identical_to_cold() {
        let aig = xor_and_graph();
        let lib = asap7_mini();
        let target = AsicTarget::new(&lib);
        let cuts = enumerate_cuts(&aig, &CutConfig::default(), &mut DefaultPolicy::default());
        let (cold, cold_stats) = compute_matches(&aig, &cuts, &target, true);
        let mut cache = SessionCache::new(true);
        // First warm run populates, second replays entirely from cache;
        // both must reproduce the cold arena and non-cache stats.
        for round in 0..2 {
            let (warm, warm_stats) =
                compute_matches_ctx(&aig, &cuts, &target, true, CacheCtx::Mut(&mut cache));
            assert_eq!(warm, cold, "round {round}: arena diverged");
            assert_eq!(
                warm_stats.without_cache_counters(),
                cold_stats,
                "round {round}: stats diverged"
            );
            if round == 0 {
                assert!(warm_stats.fn_cache_misses > 0);
                assert!(warm_stats.interned_tts > 0);
            } else {
                assert_eq!(warm_stats.fn_cache_misses, 0, "second run must fully hit");
                // Every non-trivial cut probes the cache exactly once.
                let probes = warm_stats.cuts_considered as u64 - count_trivial(&aig, &cuts);
                assert_eq!(warm_stats.fn_cache_hits, probes);
            }
        }
        assert!(cache.num_functions() > 0);
        assert!(cache.num_interned() > 0);
        // A disabled cache is transparently the cold path and stores
        // nothing.
        let mut disabled = SessionCache::new(false);
        let (off, off_stats) =
            compute_matches_ctx(&aig, &cuts, &target, true, CacheCtx::Mut(&mut disabled));
        assert_eq!(off, cold);
        assert_eq!(off_stats, cold_stats);
        assert_eq!(disabled.num_functions(), 0);
    }

    /// Trivial cuts bypass the cache entirely; everything else probes it.
    fn count_trivial(aig: &Aig, cuts: &CutArena) -> u64 {
        let mut n = 0u64;
        for node in aig.and_ids() {
            for cut in cuts.cuts_of(node) {
                if cut.is_trivial_of(node) {
                    n += 1;
                }
            }
        }
        n
    }

    #[test]
    fn frozen_and_parallel_cached_matching_match_sequential() {
        let mut aig = Aig::new();
        let mut acc = aig.add_pi();
        for _ in 0..6 {
            let b = aig.add_pi();
            let c = aig.add_pi();
            let x = aig.xor(acc, b);
            acc = aig.and(x, c);
        }
        aig.add_po(acc);
        let lib = asap7_mini();
        let target = AsicTarget::new(&lib);
        slap_par::set_threads(1);
        let cuts = enumerate_cuts(&aig, &CutConfig::default(), &mut DefaultPolicy::default());
        let (cold, cold_stats) = compute_matches(&aig, &cuts, &target, true);

        // Frozen probe of an empty cache: cold output, everything in the
        // delta; absorbing the delta reproduces a warm cache.
        let frozen_src = SessionCache::new(true);
        let mut delta = SessionDelta::default();
        let (froz, froz_stats) = compute_matches_ctx(
            &aig,
            &cuts,
            &target,
            true,
            CacheCtx::Frozen(&frozen_src, &mut delta),
        );
        assert_eq!(froz, cold);
        assert_eq!(froz_stats.without_cache_counters(), cold_stats);
        assert!(!delta.is_empty());

        // Parallel warm runs against a mutable cache: identical output to
        // the sequential warm run for every thread count, and the cache
        // ends up with identical contents.
        let mut seq_cache = SessionCache::new(true);
        let (seq_warm, seq_warm_stats) =
            compute_matches_ctx(&aig, &cuts, &target, true, CacheCtx::Mut(&mut seq_cache));
        assert_eq!(seq_warm, cold);
        for t in [2, 4, 8] {
            slap_par::set_threads(t);
            let mut par_cache = SessionCache::new(true);
            let (par_warm, par_warm_stats) =
                compute_matches_ctx(&aig, &cuts, &target, true, CacheCtx::Mut(&mut par_cache));
            assert_eq!(par_warm, cold, "t={t}: warm arena diverged");
            assert_eq!(
                par_warm_stats.without_cache_counters(),
                cold_stats,
                "t={t}: warm stats diverged"
            );
            assert_eq!(
                par_warm_stats.interned_tts, seq_warm_stats.interned_tts,
                "t={t}: interning order not reproduced"
            );
            assert_eq!(
                par_cache.num_functions(),
                seq_cache.num_functions(),
                "t={t}"
            );
            assert_eq!(par_cache.num_interned(), seq_cache.num_interned(), "t={t}");
            // A second parallel run over the warm cache replays fully.
            let (replay, replay_stats) =
                compute_matches_ctx(&aig, &cuts, &target, true, CacheCtx::Mut(&mut par_cache));
            assert_eq!(replay, cold, "t={t}: replay diverged");
            assert_eq!(replay_stats.fn_cache_misses, 0, "t={t}: replay missed");
        }
        slap_par::set_threads(1);
    }

    #[test]
    fn lut_target_matches_feasible_cuts_both_phases() {
        let aig = xor_and_graph();
        let k = 4;
        let target = LutTarget::new(k);
        let cuts = enumerate_cuts(&aig, &CutConfig::default(), &mut DefaultPolicy::default());
        let (matches, stats) = compute_matches(&aig, &cuts, &target, true);
        assert!(stats.total_matches > 0);
        for n in aig.and_ids() {
            // A LUT absorbs any non-trivial cut in either polarity, so
            // both phase lists are non-empty and mirror each other.
            let (p, q) = (matches.of(n, false), matches.of(n, true));
            assert!(!p.is_empty() && !q.is_empty(), "node {n} unmatched");
            assert_eq!(p, q, "LUT phases must mirror");
            for m in p {
                assert_eq!(m.gate, lut_gate());
                assert!(!m.leaves().is_empty() && m.leaves().len() <= k);
                for (i, &(leaf, compl, pin)) in m.leaves().iter().enumerate() {
                    assert!(leaf.index() < n.index(), "leaf after root");
                    assert!(!compl, "LUT leaves connect uncomplemented");
                    assert_eq!(pin as usize, i, "LUT pins are sequential");
                }
            }
        }
        // Feasibility decisions count one probe per phase.
        assert_eq!(stats.npn_hits % 2, 0);
        assert!(stats.npn_hit_rate() > 0.0);
    }

    #[test]
    fn lut_matching_cached_and_parallel_are_bit_identical() {
        let mut aig = Aig::new();
        let mut acc = aig.add_pi();
        for _ in 0..6 {
            let b = aig.add_pi();
            let c = aig.add_pi();
            let x = aig.xor(acc, b);
            acc = aig.and(x, c);
        }
        aig.add_po(acc);
        let target = LutTarget::new(4);
        slap_par::set_threads(1);
        let cuts = enumerate_cuts(&aig, &CutConfig::default(), &mut DefaultPolicy::default());
        let (cold, cold_stats) = compute_matches(&aig, &cuts, &target, true);
        let mut cache = SessionCache::new(true);
        for round in 0..2 {
            let (warm, warm_stats) =
                compute_matches_ctx(&aig, &cuts, &target, true, CacheCtx::Mut(&mut cache));
            assert_eq!(warm, cold, "round {round}: arena diverged");
            assert_eq!(warm_stats.without_cache_counters(), cold_stats);
            if round == 1 {
                assert_eq!(warm_stats.fn_cache_misses, 0, "second run must fully hit");
            }
        }
        // The LUT path never prepares per-library bindings.
        assert!(cache.num_functions() > 0);
        assert_eq!(cache.num_prepared(), 0);
        for t in [2, 8] {
            slap_par::set_threads(t);
            let (par, par_stats) = compute_matches(&aig, &cuts, &target, true);
            assert_eq!(par, cold, "t={t}: arena diverged");
            assert_eq!(par_stats, cold_stats, "t={t}: stats diverged");
            let mut par_cache = SessionCache::new(true);
            let (par_warm, _) =
                compute_matches_ctx(&aig, &cuts, &target, true, CacheCtx::Mut(&mut par_cache));
            assert_eq!(par_warm, cold, "t={t}: warm arena diverged");
            assert_eq!(par_cache.num_functions(), cache.num_functions(), "t={t}");
        }
        slap_par::set_threads(1);
    }

    #[test]
    fn gate_histogram_totals_match() {
        let aig = xor_and_graph();
        let lib = asap7_mini();
        let target = AsicTarget::new(&lib);
        let cuts = enumerate_cuts(&aig, &CutConfig::default(), &mut DefaultPolicy::default());
        let (matches, stats) = compute_matches(&aig, &cuts, &target, true);
        let histo = gate_histogram(&matches);
        let total: usize = histo.values().sum();
        assert_eq!(total, stats.total_matches);
    }
}
