//! Error type for technology mapping.

use std::error::Error;
use std::fmt;

/// Errors produced while mapping.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MapError {
    /// A required node/phase had no realizable implementation. With
    /// structural-match fallback enabled this indicates a library without
    /// basic 2-input cells.
    Unmappable {
        /// Index of the offending node.
        node: usize,
        /// Whether its complemented phase was the one required.
        complemented: bool,
    },
    /// The cut sets were enumerated for a different graph.
    CutSetMismatch,
}

impl fmt::Display for MapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MapError::Unmappable { node, complemented } => write!(
                f,
                "node n{node} has no implementation for its {} phase",
                if *complemented {
                    "complemented"
                } else {
                    "positive"
                }
            ),
            MapError::CutSetMismatch => write!(f, "cut sets do not belong to this graph"),
        }
    }
}

impl Error for MapError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = MapError::Unmappable {
            node: 3,
            complemented: true,
        };
        assert!(e.to_string().contains("n3"));
        assert!(MapError::CutSetMismatch.to_string().contains("cut sets"));
    }
}
