//! ABC-style ASIC technology mapper for the SLAP reproduction.
//!
//! The pipeline mirrors the flow described in §II-A of the paper:
//!
//! 1. k-feasible cuts are enumerated per node (by `slap-cuts`, under one
//!    of the paper's policies);
//! 2. each cut's local function is computed and Boolean-matched against
//!    the library ([`matching`]);
//! 3. a two-polarity dynamic program picks a delay-optimal cover, with
//!    explicit inverters bridging phases ([`Mapper`]);
//! 4. global (area-flow) and exact local area recovery iterate under the
//!    required times;
//! 5. the cover is extracted into a [`MappedNetlist`] and timed with a
//!    static timing analysis (the paper's `stime` step).
//!
//! # Example
//!
//! ```
//! use slap_aig::Aig;
//! use slap_cell::asap7_mini;
//! use slap_cuts::CutConfig;
//! use slap_map::{MapOptions, Mapper};
//!
//! # fn main() -> Result<(), slap_map::MapError> {
//! let mut aig = Aig::new();
//! let a = aig.add_pi();
//! let b = aig.add_pi();
//! let c = aig.add_pi();
//! let ab = aig.xor(a, b);
//! let f = aig.and(ab, c);
//! aig.add_po(!f);
//!
//! let lib = asap7_mini();
//! let mapper = Mapper::new(&lib, MapOptions::default());
//! let netlist = mapper.map_default(&aig, &CutConfig::default())?;
//! assert!(netlist.verify_against(&aig, 16, 7));
//! assert!(netlist.delay() > 0.0);
//! # Ok(())
//! # }
//! ```

pub mod error;
pub mod mapping;
pub mod matching;
pub mod netlist;
pub mod target;
pub mod verilog;

pub use error::MapError;
pub use mapping::{LutMapper, MapOptions, MapPolicy, MapSession, MapStats, Mapper, PhaseTimes};
pub use matching::{compute_matches, gate_histogram, MatchArena, MatchStats, PreparedMatch};
pub use netlist::{Instance, InstanceKind, MappedNetlist, PoSource, Signal, TargetModel};
pub use target::{AsicTarget, LutTarget, Target};
pub use verilog::write_verilog;
