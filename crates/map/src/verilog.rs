//! Structural Verilog export for mapped netlists — the artifact a
//! downstream place-and-route flow consumes.

use std::io::Write;

use slap_aig::NodeId;

use crate::netlist::{InstanceKind, MappedNetlist, PoSource, Signal};

/// Writes the netlist as a structural Verilog module.
///
/// Nets are named `n<i>` / `n<i>_b` for the two polarities of AIG node
/// `i`; PIs are `pi<i>`, POs `po<i>`. Gate instances use the library's
/// cell names with positional pin connections `(.A(..), .B(..), .Y(..))`
/// using the genlib pin names.
///
/// Note that a `&mut` writer can be passed for any `W: Write`.
///
/// # Errors
///
/// Propagates writer errors.
pub fn write_verilog<W: Write>(
    netlist: &MappedNetlist,
    module: &str,
    mut w: W,
) -> std::io::Result<()> {
    let num_pis = netlist.num_pis();
    write!(w, "module {module}(")?;
    for i in 0..num_pis {
        write!(w, "pi{i}, ")?;
    }
    for i in 0..netlist.pos().len() {
        write!(
            w,
            "po{i}{}",
            if i + 1 < netlist.pos().len() {
                ", "
            } else {
                ""
            }
        )?;
    }
    writeln!(w, ");")?;
    for i in 0..num_pis {
        writeln!(w, "  input pi{i};")?;
    }
    for i in 0..netlist.pos().len() {
        writeln!(w, "  output po{i};")?;
    }
    // Internal wires.
    for inst in netlist.instances() {
        writeln!(w, "  wire {};", net_name(inst.output, num_pis))?;
    }
    writeln!(w)?;
    for (k, inst) in netlist.instances().iter().enumerate() {
        match inst.kind {
            InstanceKind::Gate(g) => {
                let gate = netlist
                    .library()
                    .expect("gate instance requires an ASIC netlist")
                    .gate(g);
                write!(w, "  {} g{k} (", gate.name())?;
                for (pin, sig) in inst.inputs.iter().enumerate() {
                    let pin_name = &gate.pins()[pin];
                    write!(w, ".{pin_name}({}), ", net_name(*sig, num_pis))?;
                }
                writeln!(w, ".Y({}));", net_name(inst.output, num_pis))?;
            }
            InstanceKind::Lut(tt) => {
                let n = tt.num_vars();
                write!(
                    w,
                    "  LUT{n} #(.INIT({}'h{:x})) g{k} (",
                    1usize << n,
                    tt.bits()
                )?;
                for (pin, sig) in inst.inputs.iter().enumerate() {
                    write!(w, ".I{pin}({}), ", net_name(*sig, num_pis))?;
                }
                writeln!(w, ".O({}));", net_name(inst.output, num_pis))?;
            }
        }
    }
    writeln!(w)?;
    for (i, po) in netlist.pos().iter().enumerate() {
        match po {
            PoSource::Const(b) => writeln!(w, "  assign po{i} = 1'b{};", *b as u8)?,
            PoSource::Signal(s) => writeln!(w, "  assign po{i} = {};", net_name(*s, num_pis))?,
        }
    }
    writeln!(w, "endmodule")?;
    Ok(())
}

fn net_name(sig: Signal, num_pis: usize) -> String {
    let idx = sig.node().index();
    if sig.node() == NodeId::CONST0 {
        return if sig.complement() {
            "1'b1".to_string()
        } else {
            "1'b0".to_string()
        };
    }
    let base = if idx <= num_pis {
        format!("pi{}", idx - 1)
    } else {
        format!("n{idx}")
    };
    if sig.complement() {
        format!("{base}_b")
    } else {
        base
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::{MapOptions, Mapper};
    use slap_aig::Aig;
    use slap_cell::asap7_mini;
    use slap_cuts::CutConfig;

    fn sample_netlist() -> MappedNetlist {
        let mut aig = Aig::new();
        let a = aig.add_pi();
        let b = aig.add_pi();
        let c = aig.add_pi();
        let x = aig.xor(a, b);
        let f = aig.and(x, !c);
        aig.add_po(f);
        aig.add_po(!x);
        let lib = asap7_mini();
        Mapper::new(&lib, MapOptions::default())
            .map_default(&aig, &CutConfig::default())
            .expect("maps")
    }

    #[test]
    fn writes_well_formed_module() {
        let nl = sample_netlist();
        let mut buf = Vec::new();
        write_verilog(&nl, "test_mod", &mut buf).expect("write");
        let text = String::from_utf8(buf).expect("utf8");
        assert!(text.starts_with("module test_mod("));
        assert!(text.trim_end().ends_with("endmodule"));
        assert!(text.contains("input pi0;"));
        assert!(text.contains("output po1;"));
        // One instance line per gate.
        let instances = text
            .lines()
            .filter(|l| l.trim_start().contains(" g"))
            .count();
        assert_eq!(instances, nl.instances().len());
        // Every PO is assigned.
        assert!(text.contains("assign po0 ="));
        assert!(text.contains("assign po1 ="));
    }

    #[test]
    fn constant_pos_become_literals() {
        let mut aig = Aig::new();
        let _ = aig.add_pi();
        aig.add_po(slap_aig::Lit::TRUE);
        aig.add_po(slap_aig::Lit::FALSE);
        let lib = asap7_mini();
        let nl = Mapper::new(&lib, MapOptions::default())
            .map_default(&aig, &CutConfig::default())
            .expect("maps");
        let mut buf = Vec::new();
        write_verilog(&nl, "consts", &mut buf).expect("write");
        let text = String::from_utf8(buf).expect("utf8");
        assert!(text.contains("assign po0 = 1'b1;"));
        assert!(text.contains("assign po1 = 1'b0;"));
    }

    #[test]
    fn lut_netlists_export_init_parameters() {
        let mut aig = Aig::new();
        let a = aig.add_pi();
        let b = aig.add_pi();
        let c = aig.add_pi();
        let x = aig.xor(a, b);
        let f = aig.and(x, !c);
        aig.add_po(f);
        let nl = crate::mapping::LutMapper::lut(4, MapOptions::default())
            .map_default(&aig, &CutConfig::default())
            .expect("maps");
        let mut buf = Vec::new();
        write_verilog(&nl, "lut_mod", &mut buf).expect("write");
        let text = String::from_utf8(buf).expect("utf8");
        assert!(text.starts_with("module lut_mod("));
        assert!(text.contains("LUT"), "missing LUT primitive");
        assert!(text.contains("#(.INIT("), "missing INIT parameter");
        assert!(text.contains(".I0("), "missing LUT input pin");
        assert!(text.contains(".O("), "missing LUT output pin");
        let instances = text.lines().filter(|l| l.contains("#(.INIT(")).count();
        assert_eq!(instances, nl.instances().len());
    }

    #[test]
    fn pin_names_come_from_library() {
        let nl = sample_netlist();
        let mut buf = Vec::new();
        write_verilog(&nl, "m", &mut buf).expect("write");
        let text = String::from_utf8(buf).expect("utf8");
        // Every instance connects an output pin Y and at least pin A.
        assert!(text.contains(".Y("));
        assert!(text.contains(".A("));
    }
}
