//! Cross-run memoization for repeated mapping of a fixed AIG.
//!
//! SLAP's training pipeline maps the same circuit hundreds of times under
//! random cut orderings, yet `(root, leaves) → truth table → per-phase
//! gate bindings` is a pure function of the AIG and the library —
//! invariant across every seed. This crate caches that chain so it is
//! paid once per *distinct* cut (and once per *distinct function* for the
//! binding part) instead of once per cut occurrence per run:
//!
//! * [`TtTable`] — a hash-consed truth-table interner (`Tt → TtId`),
//!   open-addressing and append-only, so interned ids are densely
//!   numbered in first-encounter order;
//! * a *function cache* keyed on `(root, cut)` holding the cut's raw
//!   local function as a [`TtId`] plus its cone volume (`None` records an
//!   invalid cut, so negative answers are cached too);
//! * a *binding cache* indexed by [`TtId`] holding the shrunk support and
//!   the prepared per-phase [`MatchEntry`] lists, so the match-index
//!   probe and support shrinking run once per distinct function.
//!
//! All three are bundled in a [`SessionCache`] owned by a mapping
//! session. Cached values are pure, so replaying them is bit-identical
//! to recomputation. Under `slap-par` fan-out the cache is used frozen
//! (`&self`) with per-worker [`SessionDelta`]s merged in deterministic
//! node-id order afterwards — no locks anywhere near the hot path.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

use slap_aig::cone::{cut_function_with, ConeScratch};
use slap_aig::{Aig, NodeId, Tt};
use slap_cell::{MatchEntry, MatchIndex};
use slap_cuts::Cut;

/// Interned id of a truth table in a [`TtTable`]; densely numbered in
/// insertion order starting at zero.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TtId(u32);

impl TtId {
    /// The id as a dense array index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// splitmix64 finalizer — cheap and well-mixed for open addressing.
#[inline]
fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Hash-consed truth-table interner: `Tt → TtId`, open addressing,
/// append-only (interned tables are never removed, so ids stay stable
/// for the lifetime of the table).
#[derive(Clone, Debug)]
pub struct TtTable {
    /// Interned tables, indexed by [`TtId`].
    tts: Vec<Tt>,
    /// Open-addressing slots holding `id + 1` (0 = empty); length is a
    /// power of two.
    slots: Vec<u32>,
}

impl TtTable {
    /// An empty interner.
    pub fn new() -> TtTable {
        TtTable {
            tts: Vec::new(),
            slots: vec![0; 64],
        }
    }

    #[inline]
    fn hash(tt: Tt) -> u64 {
        mix64(tt.bits() ^ ((tt.num_vars() as u64) << 58))
    }

    /// Interns `tt`, returning its id and whether it was newly inserted.
    pub fn intern(&mut self, tt: Tt) -> (TtId, bool) {
        // Keep the load factor below 70% so probe chains stay short.
        if (self.tts.len() + 1) * 10 >= self.slots.len() * 7 {
            self.grow();
        }
        let mask = self.slots.len() - 1;
        let mut i = (Self::hash(tt) as usize) & mask;
        loop {
            let s = self.slots[i];
            if s == 0 {
                let id = TtId(self.tts.len() as u32);
                self.tts.push(tt);
                self.slots[i] = id.0 + 1;
                return (id, true);
            }
            if self.tts[(s - 1) as usize] == tt {
                return (TtId(s - 1), false);
            }
            i = (i + 1) & mask;
        }
    }

    /// Looks `tt` up without interning it.
    pub fn lookup(&self, tt: Tt) -> Option<TtId> {
        let mask = self.slots.len() - 1;
        let mut i = (Self::hash(tt) as usize) & mask;
        loop {
            let s = self.slots[i];
            if s == 0 {
                return None;
            }
            if self.tts[(s - 1) as usize] == tt {
                return Some(TtId(s - 1));
            }
            i = (i + 1) & mask;
        }
    }

    /// The interned table behind `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` did not come from this table.
    #[inline]
    pub fn get(&self, id: TtId) -> Tt {
        self.tts[id.index()]
    }

    /// Number of interned tables.
    pub fn len(&self) -> usize {
        self.tts.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.tts.is_empty()
    }

    fn grow(&mut self) {
        let new_len = self.slots.len() * 2;
        let mut slots = vec![0u32; new_len];
        let mask = new_len - 1;
        for (idx, &tt) in self.tts.iter().enumerate() {
            let mut i = (Self::hash(tt) as usize) & mask;
            while slots[i] != 0 {
                i = (i + 1) & mask;
            }
            slots[i] = idx as u32 + 1;
        }
        self.slots = slots;
    }
}

impl Default for TtTable {
    fn default() -> TtTable {
        TtTable::new()
    }
}

/// FxHash-style multiplicative hasher for the function-cache keys: the
/// keys are small fixed tuples of integers, where SipHash's per-call
/// setup would dominate the probe cost on the matching hot path.
#[derive(Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    const SEED: u64 = 0x517c_c1b7_2722_0a95;

    #[inline]
    fn fold(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(Self::SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            let mut w = [0u8; 8];
            w.copy_from_slice(c);
            self.fold(u64::from_le_bytes(w));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut w = [0u8; 8];
            w[..rem.len()].copy_from_slice(rem);
            self.fold(u64::from_le_bytes(w));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.fold(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.fold(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.fold(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.fold(v as u64);
    }
}

/// Hasher state for the function-cache map.
pub type BuildFxHasher = BuildHasherDefault<FxHasher>;

/// Function-cache key: a cut is identified by its root and leaf set (cut
/// ids are arena offsets and differ between enumeration runs, so they
/// cannot key anything that outlives one run).
type FnKey = (NodeId, Cut);

/// Function-cache value: `None` records an invalid cut; otherwise the
/// interned raw local function and the cut's cone volume.
type FnValue = Option<(TtId, u32)>;

/// Per-function prepared bindings: the shrunk support mapping and the
/// spans of the two phase lists inside the template buffer.
#[derive(Clone, Copy, Debug)]
struct BindingInfo {
    /// `support[i]` = index into the cut's leaf list of shrunk variable
    /// `i` (only the first `num_support` entries are meaningful).
    support: [u8; 6],
    num_support: u8,
    pos_start: u32,
    pos_end: u32,
    neg_end: u32,
}

/// Prepared per-phase bindings of one distinct cut function, borrowed
/// from the cache. Reinstantiating a [`MatchEntry`] against a concrete
/// cut occurrence only needs the occurrence's leaf list.
#[derive(Clone, Copy, Debug)]
pub struct Prepared<'a> {
    /// Index into the cut's leaf list per shrunk variable.
    pub support: [u8; 6],
    /// Number of true support variables (0 = constant function).
    pub num_support: u8,
    /// Positive-phase gate bindings, in match-index order.
    pub pos: &'a [MatchEntry],
    /// Negative-phase gate bindings, in match-index order.
    pub neg: &'a [MatchEntry],
}

/// `TtId`-indexed store of prepared bindings. Entries are created
/// lazily, the first time a function is resolved through the cache.
#[derive(Clone, Debug, Default)]
struct BindingCache {
    /// Flat template buffer: each prepared function appends its positive
    /// entries, then its negative entries.
    templates: Vec<MatchEntry>,
    /// `infos[id]` is `Some` once the bindings for `id` are prepared.
    infos: Vec<Option<BindingInfo>>,
    prepared: usize,
}

impl BindingCache {
    fn get(&self, id: TtId) -> Option<&BindingInfo> {
        self.infos.get(id.index()).and_then(Option::as_ref)
    }

    fn view(&self, info: &BindingInfo) -> Prepared<'_> {
        Prepared {
            support: info.support,
            num_support: info.num_support,
            pos: &self.templates[info.pos_start as usize..info.pos_end as usize],
            neg: &self.templates[info.pos_end as usize..info.neg_end as usize],
        }
    }

    /// Prepares the bindings of the raw function `tt` under `id`:
    /// shrink to true support, then one canonical match-index probe for
    /// both phases.
    fn prepare(&mut self, id: TtId, tt: Tt, index: &MatchIndex) {
        if self.infos.len() <= id.index() {
            self.infos.resize(id.index() + 1, None);
        }
        let mut support = [0usize; Tt::MAX_VARS];
        let (stt, num_support) = tt.shrink_to_support_into(&mut support);
        let mut info = BindingInfo {
            support: [0u8; 6],
            num_support: num_support as u8,
            pos_start: self.templates.len() as u32,
            pos_end: self.templates.len() as u32,
            neg_end: self.templates.len() as u32,
        };
        if num_support > 0 {
            for (i, &v) in support[..num_support].iter().enumerate() {
                info.support[i] = v as u8;
            }
            let (pos, neg) = index.matches_both(stt);
            self.templates.extend_from_slice(pos);
            info.pos_end = self.templates.len() as u32;
            self.templates.extend_from_slice(neg);
            info.neg_end = self.templates.len() as u32;
        }
        self.infos[id.index()] = Some(info);
        self.prepared += 1;
    }
}

/// What a cache probe observed, for the caller's statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct ResolveInfo {
    /// The `(root, cut)` pair was already in the function cache.
    pub fn_hit: bool,
    /// The function's bindings were already prepared.
    pub binding_hit: bool,
    /// The function's truth table was newly interned by this probe.
    pub interned: bool,
}

/// Outcome of a frozen (read-only) cache probe.
pub enum FrozenResolve<'a> {
    /// The cache knows this cut: `None` = invalid cut, `Some` = prepared
    /// bindings ready to replay.
    Known(Option<Prepared<'a>>),
    /// Cache miss: the function was computed cold (and recorded in the
    /// delta); `None` = invalid cut. The caller finishes the cold path.
    Cold(Option<(Tt, u32)>),
}

/// Cache insertions recorded by frozen probes, replayed later with
/// [`SessionCache::absorb`]. Merging per-worker deltas in chunk (=
/// ascending node-id) order reproduces the sequential first-encounter
/// interning order exactly.
#[derive(Debug, Default)]
pub struct SessionDelta {
    entries: Vec<(FnKey, Option<(Tt, u32)>)>,
}

impl SessionDelta {
    /// Number of recorded insertions (before deduplication).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Appends every entry of `other`, preserving order.
    pub fn append(&mut self, other: &mut SessionDelta) {
        self.entries.append(&mut other.entries);
    }
}

/// The per-session memoization bundle: truth-table interner, function
/// cache, and binding cache. Values are pure functions of the AIG and
/// library, so a session must only ever see one AIG (the owning
/// `MapSession` enforces this) — within a session nothing is ever
/// invalidated.
#[derive(Debug)]
pub struct SessionCache {
    enabled: bool,
    tts: TtTable,
    functions: HashMap<FnKey, FnValue, BuildFxHasher>,
    bindings: BindingCache,
}

impl SessionCache {
    /// A cache that memoizes (`enabled = true`) or transparently forces
    /// the cold path (`enabled = false`, bit-identical behavior, nothing
    /// stored).
    pub fn new(enabled: bool) -> SessionCache {
        SessionCache {
            enabled,
            tts: TtTable::new(),
            functions: HashMap::default(),
            bindings: BindingCache::default(),
        }
    }

    /// A cache honoring the `SLAP_CACHE` environment toggle: set
    /// `SLAP_CACHE=0` to force the cold path everywhere (the CI matrix
    /// runs one leg this way); any other value, or the variable being
    /// unset, enables memoization.
    pub fn from_env() -> SessionCache {
        let enabled = std::env::var("SLAP_CACHE").map_or(true, |v| v != "0");
        SessionCache::new(enabled)
    }

    /// Whether this cache memoizes at all.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Number of cached `(root, cut)` functions (invalid cuts included).
    pub fn num_functions(&self) -> usize {
        self.functions.len()
    }

    /// Number of interned distinct truth tables.
    pub fn num_interned(&self) -> usize {
        self.tts.len()
    }

    /// Number of functions with prepared bindings.
    pub fn num_prepared(&self) -> usize {
        self.bindings.prepared
    }

    /// Resolves the local function and prepared bindings of
    /// `(root, cut)`, computing and inserting on miss (the mutable,
    /// sequential-path probe). `leaves` must be the cut's leaf list.
    /// Returns `None` for an invalid cut.
    pub fn resolve_mut<'a>(
        &'a mut self,
        aig: &Aig,
        root: NodeId,
        cut: &Cut,
        leaves: &[NodeId],
        index: &MatchIndex,
        cone: &mut ConeScratch,
    ) -> (Option<Prepared<'a>>, ResolveInfo) {
        let mut info = ResolveInfo::default();
        let value = match self.functions.get(&(root, *cut)) {
            Some(v) => {
                info.fn_hit = true;
                *v
            }
            None => {
                let v = cut_function_with(aig, root, leaves, cone).map(|(tt, vol)| {
                    let (id, fresh) = self.tts.intern(tt);
                    info.interned = fresh;
                    if self.bindings.get(id).is_some() {
                        info.binding_hit = true;
                    } else {
                        self.bindings.prepare(id, tt, index);
                    }
                    (id, vol as u32)
                });
                self.functions.insert((root, *cut), v);
                v
            }
        };
        match value {
            None => (None, info),
            Some((id, _)) => {
                if info.fn_hit {
                    // Invariant: any function committed to the cache has
                    // prepared bindings.
                    info.binding_hit = true;
                }
                let bi = self
                    .bindings
                    .get(id)
                    .expect("cached function without prepared bindings");
                (Some(self.bindings.view(bi)), info)
            }
        }
    }

    /// Read-only probe for parallel workers: hits replay prepared
    /// bindings; misses compute the function cold, record it into
    /// `delta`, and (when the function itself is already interned)
    /// still reuse the prepared bindings.
    pub fn resolve_frozen<'a>(
        &'a self,
        aig: &Aig,
        root: NodeId,
        cut: &Cut,
        leaves: &[NodeId],
        cone: &mut ConeScratch,
        delta: &mut SessionDelta,
    ) -> (FrozenResolve<'a>, ResolveInfo) {
        let mut info = ResolveInfo::default();
        if let Some(v) = self.functions.get(&(root, *cut)) {
            info.fn_hit = true;
            return match v {
                None => (FrozenResolve::Known(None), info),
                Some((id, _)) => {
                    info.binding_hit = true;
                    let bi = self
                        .bindings
                        .get(*id)
                        .expect("cached function without prepared bindings");
                    (FrozenResolve::Known(Some(self.bindings.view(bi))), info)
                }
            };
        }
        let v = cut_function_with(aig, root, leaves, cone).map(|(tt, vol)| (tt, vol as u32));
        delta.entries.push(((root, *cut), v));
        if let Some((tt, _)) = v {
            if let Some(id) = self.tts.lookup(tt) {
                if let Some(bi) = self.bindings.get(id) {
                    info.binding_hit = true;
                    return (FrozenResolve::Known(Some(self.bindings.view(bi))), info);
                }
            }
        }
        (FrozenResolve::Cold(v), info)
    }

    /// Function-only mutable probe: resolves the raw local function of
    /// `(root, cut)` without touching the binding cache. This is the
    /// sequential probe of targets that match structurally on the truth
    /// table itself (k-LUT) and therefore never prepare gate bindings.
    /// A session serves exactly one target, so the binding cache simply
    /// stays empty on this path — the function cache and interner are
    /// target-independent pure functions of the AIG.
    pub fn resolve_fn_mut(
        &mut self,
        aig: &Aig,
        root: NodeId,
        cut: &Cut,
        leaves: &[NodeId],
        cone: &mut ConeScratch,
    ) -> (Option<(Tt, u32)>, ResolveInfo) {
        let mut info = ResolveInfo::default();
        let value = match self.functions.get(&(root, *cut)) {
            Some(v) => {
                info.fn_hit = true;
                *v
            }
            None => {
                let v = cut_function_with(aig, root, leaves, cone).map(|(tt, vol)| {
                    let (id, fresh) = self.tts.intern(tt);
                    info.interned = fresh;
                    (id, vol as u32)
                });
                self.functions.insert((root, *cut), v);
                v
            }
        };
        (value.map(|(id, vol)| (self.tts.get(id), vol)), info)
    }

    /// Function-only read-only probe for parallel workers of
    /// binding-free targets: hits replay the interned function, misses
    /// compute it cold and record it into `delta` for
    /// [`SessionCache::absorb_functions`].
    pub fn resolve_fn_frozen(
        &self,
        aig: &Aig,
        root: NodeId,
        cut: &Cut,
        leaves: &[NodeId],
        cone: &mut ConeScratch,
        delta: &mut SessionDelta,
    ) -> (Option<(Tt, u32)>, ResolveInfo) {
        let mut info = ResolveInfo::default();
        if let Some(v) = self.functions.get(&(root, *cut)) {
            info.fn_hit = true;
            return (v.map(|(id, vol)| (self.tts.get(id), vol)), info);
        }
        let v = cut_function_with(aig, root, leaves, cone).map(|(tt, vol)| (tt, vol as u32));
        delta.entries.push(((root, *cut), v));
        (v, info)
    }

    /// The cached volume of `(root, cut)`, if the function cache has
    /// seen it (used to skip cone re-traversal in feature extraction).
    pub fn cached_volume(&self, root: NodeId, cut: &Cut) -> Option<usize> {
        match self.functions.get(&(root, *cut)) {
            Some(Some((_, vol))) => Some(*vol as usize),
            _ => None,
        }
    }

    /// Replays `delta` into the cache in recorded order, skipping keys
    /// that are already present, and returns how many truth tables were
    /// newly interned. With worker deltas concatenated in chunk order
    /// this reproduces the sequential first-encounter interning order.
    pub fn absorb(&mut self, mut delta: SessionDelta, index: &MatchIndex) -> u64 {
        let mut fresh_interns = 0u64;
        for ((root, cut), v) in delta.entries.drain(..) {
            if self.functions.contains_key(&(root, cut)) {
                continue;
            }
            let stored = v.map(|(tt, vol)| {
                let (id, fresh) = self.tts.intern(tt);
                if fresh {
                    fresh_interns += 1;
                }
                if self.bindings.get(id).is_none() {
                    self.bindings.prepare(id, tt, index);
                }
                (id, vol)
            });
            self.functions.insert((root, cut), stored);
        }
        fresh_interns
    }

    /// [`SessionCache::absorb`] for binding-free targets: replays
    /// `delta` into the function cache and interner only, never touching
    /// the binding cache (there is no match index to probe). Returns how
    /// many truth tables were newly interned.
    pub fn absorb_functions(&mut self, mut delta: SessionDelta) -> u64 {
        let mut fresh_interns = 0u64;
        for ((root, cut), v) in delta.entries.drain(..) {
            if self.functions.contains_key(&(root, cut)) {
                continue;
            }
            let stored = v.map(|(tt, vol)| {
                let (id, fresh) = self.tts.intern(tt);
                if fresh {
                    fresh_interns += 1;
                }
                (id, vol)
            });
            self.functions.insert((root, cut), stored);
        }
        fresh_interns
    }

    /// An order-independent digest of the cache *contents*: every
    /// `(root, cut) → function` entry hashed by value (the truth-table
    /// bits, not the interning-order-dependent [`TtId`]) and combined
    /// commutatively. Two caches that memoize the same set of functions
    /// fingerprint equal no matter what order the entries arrived in —
    /// this is what the serve-equivalence suite asserts is invariant
    /// across worker thread counts.
    pub fn fingerprint(&self) -> u64 {
        let mut acc = 0u64;
        for ((root, cut), value) in &self.functions {
            let mut h = mix64(root.index() as u64 ^ 0x9e37_79b9_7f4a_7c15);
            for &leaf in cut.leaf_indices() {
                h = mix64(h ^ u64::from(leaf));
            }
            let entry = match value {
                None => mix64(h ^ u64::MAX),
                Some((id, vol)) => {
                    let tt = self.tts.get(*id);
                    mix64(h ^ tt.bits() ^ ((tt.num_vars() as u64) << 58) ^ (u64::from(*vol) << 32))
                }
            };
            acc = acc.wrapping_add(entry);
        }
        mix64(acc ^ ((self.functions.len() as u64) << 1) ^ ((self.tts.len() as u64) << 33))
    }
}

/// A [`SessionCache`] promoted to a read-only shared tier, as used by
/// the `slap-serve` engine: during a *generation*, every worker probes
/// the tier through `&self` (the frozen resolve paths — lock-free by
/// construction, the borrow checker proves no writer exists), recording
/// misses into per-job [`SessionDelta`]s. Between generations the
/// single-threaded engine absorbs those deltas in job-dispatch order
/// through `&mut self` and bumps the generation counter.
///
/// The tier only ever removes recomputation: absorbing in dispatch
/// order reproduces the sequential first-encounter interning order, and
/// a probe can only observe values that are pure functions of the AIG —
/// so results stay bit-identical to a cold session no matter how many
/// generations ran before.
#[derive(Debug)]
pub struct FrozenTier {
    cache: SessionCache,
    generation: u64,
    deltas_absorbed: u64,
    fresh_interns: u64,
}

impl FrozenTier {
    /// A tier that memoizes (`enabled = true`) or transparently degrades
    /// every probe to the cold path (`enabled = false`).
    pub fn new(enabled: bool) -> FrozenTier {
        FrozenTier {
            cache: SessionCache::new(enabled),
            generation: 0,
            deltas_absorbed: 0,
            fresh_interns: 0,
        }
    }

    /// A tier honoring the `SLAP_CACHE` environment toggle (see
    /// [`SessionCache::from_env`]).
    pub fn from_env() -> FrozenTier {
        FrozenTier {
            cache: SessionCache::from_env(),
            generation: 0,
            deltas_absorbed: 0,
            fresh_interns: 0,
        }
    }

    /// Whether the tier memoizes at all.
    pub fn enabled(&self) -> bool {
        self.cache.enabled()
    }

    /// The read-only view workers probe during a generation.
    pub fn frozen(&self) -> &SessionCache {
        &self.cache
    }

    /// How many absorb generations have completed.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Total deltas absorbed across all generations.
    pub fn deltas_absorbed(&self) -> u64 {
        self.deltas_absorbed
    }

    /// Total truth tables newly interned by absorption.
    pub fn fresh_interns(&self) -> u64 {
        self.fresh_interns
    }

    /// Order-independent digest of the tier contents
    /// ([`SessionCache::fingerprint`]).
    pub fn fingerprint(&self) -> u64 {
        self.cache.fingerprint()
    }

    /// Absorbs one generation's worth of deltas in the given order via
    /// `absorb` (the target-specific replay, e.g.
    /// [`SessionCache::absorb`] for ASIC or
    /// [`SessionCache::absorb_functions`] for LUT targets), then bumps
    /// the generation counter. Returns how many truth tables were newly
    /// interned. A call with no deltas is a no-op that leaves the
    /// generation unchanged, and a disabled tier drops every delta
    /// unabsorbed (the cold path must stay cold).
    pub fn absorb_generation(
        &mut self,
        deltas: Vec<SessionDelta>,
        mut absorb: impl FnMut(&mut SessionCache, SessionDelta) -> u64,
    ) -> u64 {
        if deltas.is_empty() || !self.cache.enabled() {
            return 0;
        }
        let mut fresh = 0u64;
        for delta in deltas {
            self.deltas_absorbed += 1;
            fresh += absorb(&mut self.cache, delta);
        }
        self.fresh_interns += fresh;
        self.generation += 1;
        fresh
    }
}

/// Key of one memoized shuffled-map run: everything that, together with
/// the session's AIG and mapper, determines the mapping bit-for-bit.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct RunKey {
    /// Discriminant of the mapping target (`Target::cache_key()`), so
    /// one session can never replay an ASIC run as a LUT run or vice
    /// versa.
    pub target: u64,
    /// Cut feasibility bound (`CutConfig::k`).
    pub k: usize,
    /// Shuffle seed of the priority policy.
    pub seed: u64,
    /// Cuts kept per node by the shuffle policy.
    pub keep: usize,
}

/// The replayable outcome of a map run: QoR as exact bit patterns plus
/// the cover cuts, which is everything training-data generation consumes
/// from a mapping.
#[derive(Clone, Debug, PartialEq)]
pub struct CachedRun {
    /// `area.to_bits()` of the mapped netlist.
    pub area_bits: u32,
    /// `delay.to_bits()` of the mapped netlist.
    pub delay_bits: u32,
    /// The `(root, cut)` pairs of the cover, in emission order.
    pub cover: Vec<(NodeId, Cut)>,
}

/// Whole-run memoization: `(k, seed, keep) → (QoR, cover)` for one AIG.
/// Mapping is a pure function of those inputs, so replaying a stored run
/// is bit-identical to re-mapping — this is what makes repeated
/// training-data generation on one circuit (epoch resampling, benchmark
/// rounds) cheap. The finer-grained [`SessionCache`] still serves runs
/// with novel parameters.
#[derive(Debug, Default)]
pub struct RunCache {
    map: HashMap<RunKey, CachedRun, BuildFxHasher>,
}

impl RunCache {
    /// The stored outcome for `key`, if this exact run happened before.
    pub fn get(&self, key: RunKey) -> Option<&CachedRun> {
        self.map.get(&key)
    }

    /// Stores one run's outcome (first store wins; the value is a pure
    /// function of the key, so overwriting would be a no-op anyway).
    pub fn insert(&mut self, key: RunKey, run: CachedRun) {
        self.map.entry(key).or_insert(run);
    }

    /// Number of memoized runs.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no run has been stored.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slap_cell::asap7_mini;

    #[test]
    fn interner_deduplicates_and_keeps_ids_stable() {
        let mut t = TtTable::new();
        let a = Tt::var(0, 3);
        let b = Tt::var(1, 3);
        let (ia, fresh_a) = t.intern(a);
        let (ib, fresh_b) = t.intern(b);
        assert!(fresh_a && fresh_b);
        assert_ne!(ia, ib);
        let (ia2, fresh_a2) = t.intern(a);
        assert_eq!(ia, ia2);
        assert!(!fresh_a2);
        assert_eq!(t.get(ia), a);
        assert_eq!(t.get(ib), b);
        assert_eq!(t.lookup(a), Some(ia));
        assert_eq!(t.lookup(a.and(b)), None);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn interner_survives_growth() {
        // Insert far more than the initial slot count to force rehashes.
        let mut t = TtTable::new();
        let mut ids = Vec::new();
        for bits in 0..500u64 {
            let tt = Tt::from_bits(bits, 6);
            ids.push(t.intern(tt).0);
        }
        assert_eq!(t.len(), 500);
        for (bits, &id) in ids.iter().enumerate().map(|(b, i)| (b as u64, i)) {
            let tt = Tt::from_bits(bits, 6);
            assert_eq!(t.get(id), tt);
            assert_eq!(t.lookup(tt), Some(id));
            assert_eq!(t.intern(tt), (id, false));
        }
    }

    #[test]
    fn fx_hasher_is_deterministic_and_spreads() {
        let h = |f: &dyn Fn(&mut FxHasher)| {
            let mut s = FxHasher::default();
            f(&mut s);
            s.finish()
        };
        let a = h(&|s| s.write_u64(1));
        let b = h(&|s| s.write_u64(1));
        let c = h(&|s| s.write_u64(2));
        assert_eq!(a, b);
        assert_ne!(a, c);
        // The byte-slice path folds 8-byte chunks.
        let d = h(&|s| s.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]));
        let e = h(&|s| s.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]));
        assert_eq!(d, e);
    }

    fn xor_chain() -> (Aig, Vec<NodeId>) {
        let mut aig = Aig::new();
        let a = aig.add_pi();
        let b = aig.add_pi();
        let c = aig.add_pi();
        let x = aig.xor(a, b);
        let f = aig.and(x, c);
        aig.add_po(f);
        let roots = aig.and_ids().collect();
        (aig, roots)
    }

    #[test]
    fn resolve_mut_hits_on_second_probe_and_matches_cold_compute() {
        let (aig, roots) = xor_chain();
        let lib = asap7_mini();
        let index = MatchIndex::build(&lib);
        let mut cache = SessionCache::new(true);
        let mut cone = ConeScratch::default();
        let root = *roots.last().expect("has ands");
        let (f0, f1) = aig.fanins(root);
        let leaves = [f0.node(), f1.node()];
        let cut = Cut::from_leaves(&leaves);

        let (first, info1) = cache.resolve_mut(&aig, root, &cut, &leaves, &index, &mut cone);
        let first = first.expect("valid cut");
        assert!(!info1.fn_hit && info1.interned);
        let (first_pos, first_neg) = (first.pos.to_vec(), first.neg.to_vec());
        let (first_support, first_ns) = (first.support, first.num_support);

        let (second, info2) = cache.resolve_mut(&aig, root, &cut, &leaves, &index, &mut cone);
        let second = second.expect("valid cut");
        assert!(info2.fn_hit && info2.binding_hit && !info2.interned);
        assert_eq!(second.pos, first_pos.as_slice());
        assert_eq!(second.neg, first_neg.as_slice());
        assert_eq!(second.support, first_support);
        assert_eq!(second.num_support, first_ns);

        // The replayed bindings agree with a cold recomputation.
        let (tt, vol) = cut_function_with(&aig, root, &leaves, &mut cone).expect("valid");
        assert_eq!(cache.cached_volume(root, &cut), Some(vol));
        let mut support = [0usize; Tt::MAX_VARS];
        let (stt, ns) = tt.shrink_to_support_into(&mut support);
        assert_eq!(ns, first_ns as usize);
        let (pos, neg) = index.matches_both(stt);
        assert_eq!(pos, first_pos.as_slice());
        assert_eq!(neg, first_neg.as_slice());
    }

    #[test]
    fn invalid_cuts_are_negatively_cached() {
        let (aig, roots) = xor_chain();
        let lib = asap7_mini();
        let index = MatchIndex::build(&lib);
        let mut cache = SessionCache::new(true);
        let mut cone = ConeScratch::default();
        let root = *roots.last().expect("has ands");
        // A leaf set that does not close the cone: only one PI.
        let leaves = [NodeId::new(1)];
        let cut = Cut::from_leaves(&leaves);
        let (r1, i1) = cache.resolve_mut(&aig, root, &cut, &leaves, &index, &mut cone);
        assert!(r1.is_none() && !i1.fn_hit);
        let (r2, i2) = cache.resolve_mut(&aig, root, &cut, &leaves, &index, &mut cone);
        assert!(r2.is_none() && i2.fn_hit);
        assert_eq!(cache.cached_volume(root, &cut), None);
    }

    #[test]
    fn frozen_miss_records_delta_and_absorb_makes_it_hit() {
        let (aig, roots) = xor_chain();
        let lib = asap7_mini();
        let index = MatchIndex::build(&lib);
        let mut cache = SessionCache::new(true);
        let mut cone = ConeScratch::default();
        let root = *roots.last().expect("has ands");
        let (f0, f1) = aig.fanins(root);
        let leaves = [f0.node(), f1.node()];
        let cut = Cut::from_leaves(&leaves);

        let mut delta = SessionDelta::default();
        let (res, info) = cache.resolve_frozen(&aig, root, &cut, &leaves, &mut cone, &mut delta);
        assert!(matches!(res, FrozenResolve::Cold(Some(_))));
        assert!(!info.fn_hit);
        assert_eq!(delta.len(), 1);

        let fresh = cache.absorb(delta, &index);
        assert_eq!(fresh, 1);
        assert_eq!(cache.num_functions(), 1);

        let mut delta2 = SessionDelta::default();
        let (res2, info2) = cache.resolve_frozen(&aig, root, &cut, &leaves, &mut cone, &mut delta2);
        assert!(info2.fn_hit && info2.binding_hit);
        assert!(matches!(res2, FrozenResolve::Known(Some(_))));
        assert!(delta2.is_empty());

        // Absorbing a duplicate key is a no-op.
        let mut dup = SessionDelta::default();
        let _ = cache.resolve_frozen(
            &aig, roots[0], &cut, &leaves, &mut cone,
            &mut dup, // different root: genuinely new key
        );
        let before = cache.num_functions();
        let mut dup2 = SessionDelta::default();
        dup2.append(&mut dup);
        let _ = cache.absorb(dup2, &index);
        assert_eq!(cache.num_functions(), before + 1);
    }

    #[test]
    fn frozen_reuses_bindings_of_interned_functions() {
        // Two cuts with the same function at different roots: after the
        // first is absorbed, a frozen probe of the second misses the
        // function cache but still replays the prepared bindings.
        let mut aig = Aig::new();
        let a = aig.add_pi();
        let b = aig.add_pi();
        let c = aig.add_pi();
        let d = aig.add_pi();
        let x = aig.and(a, b);
        let y = aig.and(c, d);
        aig.add_po(x);
        aig.add_po(y);
        let roots: Vec<NodeId> = aig.and_ids().collect();
        let lib = asap7_mini();
        let index = MatchIndex::build(&lib);
        let mut cache = SessionCache::new(true);
        let mut cone = ConeScratch::default();
        let lv_x = [a.node(), b.node()];
        let cut_x = Cut::from_leaves(&lv_x);
        let lv_y = [c.node(), d.node()];
        let cut_y = Cut::from_leaves(&lv_y);
        let (r, _) = cache.resolve_mut(&aig, roots[0], &cut_x, &lv_x, &index, &mut cone);
        assert!(r.is_some());
        let mut delta = SessionDelta::default();
        let (res, info) =
            cache.resolve_frozen(&aig, roots[1], &cut_y, &lv_y, &mut cone, &mut delta);
        assert!(!info.fn_hit, "different (root, cut) key");
        assert!(info.binding_hit, "same function, bindings reused");
        assert!(matches!(res, FrozenResolve::Known(Some(_))));
        assert_eq!(delta.len(), 1, "still recorded for absorption");
    }

    #[test]
    fn disabled_cache_reports_disabled() {
        assert!(!SessionCache::new(false).enabled());
        assert!(SessionCache::new(true).enabled());
    }

    #[test]
    fn run_cache_round_trips_and_first_store_wins() {
        let mut runs = RunCache::default();
        assert!(runs.is_empty());
        let key = RunKey {
            target: 11,
            k: 5,
            seed: 7,
            keep: 8,
        };
        assert!(runs.get(key).is_none());
        let cover = vec![(NodeId::new(3), Cut::from_leaves(&[NodeId::new(1)]))];
        let run = CachedRun {
            area_bits: 1.5f32.to_bits(),
            delay_bits: 20.0f32.to_bits(),
            cover: cover.clone(),
        };
        runs.insert(key, run.clone());
        runs.insert(
            key,
            CachedRun {
                area_bits: 0,
                delay_bits: 0,
                cover: Vec::new(),
            },
        );
        assert_eq!(runs.len(), 1);
        let got = runs.get(key).expect("stored");
        assert_eq!(*got, run, "first store wins");
        assert_eq!(got.cover, cover);
        assert!(runs.get(RunKey { seed: 8, ..key }).is_none());
        assert!(
            runs.get(RunKey { target: 12, ..key }).is_none(),
            "runs are discriminated by target"
        );
    }

    #[test]
    fn fn_only_probes_match_cold_compute_and_skip_bindings() {
        let (aig, roots) = xor_chain();
        let mut cache = SessionCache::new(true);
        let mut cone = ConeScratch::default();
        let root = *roots.last().expect("has ands");
        let (f0, f1) = aig.fanins(root);
        let leaves = [f0.node(), f1.node()];
        let cut = Cut::from_leaves(&leaves);

        let (cold, _) = cut_function_with(&aig, root, &leaves, &mut cone).expect("valid cut");
        let (first, i1) = cache.resolve_fn_mut(&aig, root, &cut, &leaves, &mut cone);
        let (tt1, _) = first.expect("valid cut");
        assert!(!i1.fn_hit && i1.interned);
        assert_eq!(tt1, cold);
        let (second, i2) = cache.resolve_fn_mut(&aig, root, &cut, &leaves, &mut cone);
        assert!(i2.fn_hit && !i2.interned && !i2.binding_hit);
        assert_eq!(second.expect("valid cut").0, cold);
        assert_eq!(cache.num_prepared(), 0, "fn-only path never prepares");

        // Frozen probe on a fresh key records a delta; absorbing it
        // function-only warms the cache without touching bindings.
        let other = roots[0];
        let (g0, g1) = aig.fanins(other);
        let lv = [g0.node(), g1.node()];
        let cut2 = Cut::from_leaves(&lv);
        let mut delta = SessionDelta::default();
        let (froz, fi) = cache.resolve_fn_frozen(&aig, other, &cut2, &lv, &mut cone, &mut delta);
        assert!(!fi.fn_hit && froz.is_some());
        assert_eq!(delta.len(), 1);
        let fresh = cache.absorb_functions(delta);
        assert!(fresh <= 1, "at most one new distinct function");
        assert_eq!(cache.num_functions(), 2);
        assert_eq!(cache.num_prepared(), 0);
        let mut delta2 = SessionDelta::default();
        let (_, fi2) = cache.resolve_fn_frozen(&aig, other, &cut2, &lv, &mut cone, &mut delta2);
        assert!(fi2.fn_hit && delta2.is_empty());
    }

    #[test]
    fn fingerprint_is_insertion_order_independent() {
        let (aig, roots) = xor_chain();
        let mut cone = ConeScratch::default();
        // Collect the single-node cuts of every AND, resolve them into
        // two caches in opposite orders, and require equal fingerprints.
        let mut forward = SessionCache::new(true);
        let mut backward = SessionCache::new(true);
        let probes: Vec<(NodeId, [NodeId; 2])> = roots
            .iter()
            .map(|&r| {
                let (f0, f1) = aig.fanins(r);
                (r, [f0.node(), f1.node()])
            })
            .collect();
        for (root, lv) in &probes {
            let cut = Cut::from_leaves(lv);
            let _ = forward.resolve_fn_mut(&aig, *root, &cut, lv, &mut cone);
        }
        for (root, lv) in probes.iter().rev() {
            let cut = Cut::from_leaves(lv);
            let _ = backward.resolve_fn_mut(&aig, *root, &cut, lv, &mut cone);
        }
        assert_eq!(forward.num_functions(), backward.num_functions());
        assert_eq!(
            forward.fingerprint(),
            backward.fingerprint(),
            "fingerprints hash contents, not arrival order"
        );
        // A cache holding fewer entries must fingerprint differently.
        let mut partial = SessionCache::new(true);
        let (root, lv) = &probes[0];
        let cut = Cut::from_leaves(lv);
        let _ = partial.resolve_fn_mut(&aig, *root, &cut, lv, &mut cone);
        assert_ne!(partial.fingerprint(), forward.fingerprint());
        assert_eq!(
            SessionCache::new(true).fingerprint(),
            SessionCache::new(false).fingerprint()
        );
    }

    #[test]
    fn frozen_tier_absorbs_generations_in_order() {
        let (aig, roots) = xor_chain();
        let mut cone = ConeScratch::default();
        let mut tier = FrozenTier::new(true);
        assert!(tier.enabled());
        assert_eq!(tier.generation(), 0);

        // Generation 1: two workers probe the frozen view, each
        // recording a delta; the engine absorbs both in dispatch order.
        let probe = |cache: &SessionCache, root: NodeId, cone: &mut ConeScratch| {
            let (f0, f1) = aig.fanins(root);
            let lv = [f0.node(), f1.node()];
            let cut = Cut::from_leaves(&lv);
            let mut delta = SessionDelta::default();
            let _ = cache.resolve_fn_frozen(&aig, root, &cut, &lv, cone, &mut delta);
            delta
        };
        let d0 = probe(tier.frozen(), roots[0], &mut cone);
        let d1 = probe(tier.frozen(), roots[1], &mut cone);
        assert_eq!(d0.len() + d1.len(), 2);
        let fresh = tier.absorb_generation(vec![d0, d1], SessionCache::absorb_functions);
        assert!(fresh >= 1);
        assert_eq!(tier.generation(), 1);
        assert_eq!(tier.deltas_absorbed(), 2);
        assert_eq!(tier.frozen().num_functions(), 2);

        // Generation 2: the same probes now hit and record nothing;
        // absorbing empty deltas still advances the generation.
        let d0 = probe(tier.frozen(), roots[0], &mut cone);
        assert!(d0.is_empty());
        let fp = tier.fingerprint();
        let _ = tier.absorb_generation(vec![d0], SessionCache::absorb_functions);
        assert_eq!(tier.generation(), 2);
        assert_eq!(
            tier.fingerprint(),
            fp,
            "empty absorb leaves contents unchanged"
        );

        // No deltas at all: a no-op, generation unchanged.
        let _ = tier.absorb_generation(Vec::new(), SessionCache::absorb_functions);
        assert_eq!(tier.generation(), 2);

        // A disabled tier drops deltas unabsorbed and stays empty (the
        // map layer degrades disabled caches to the cold path before a
        // delta can even be recorded; this guards direct misuse).
        let mut off = FrozenTier::new(false);
        assert!(!off.enabled());
        let d = probe(off.frozen(), roots[0], &mut cone);
        let _ = off.absorb_generation(vec![d], SessionCache::absorb_functions);
        assert_eq!(off.generation(), 0);
        assert_eq!(
            off.frozen().num_functions(),
            0,
            "disabled tier stores nothing"
        );
    }
}
