//! Integration tests for the three label modes of training-data
//! generation.

use slap_cell::asap7_mini;
use slap_circuits::arith::ripple_carry_adder;
use slap_core::{generate_dataset, LabelMode, SampleConfig, CUT_EMBED_COLS, CUT_EMBED_ROWS};
use slap_map::{MapOptions, Mapper};
use slap_ml::Dataset;

fn run(mode: LabelMode) -> Dataset {
    let aig = ripple_carry_adder(8);
    let lib = asap7_mini();
    let mapper = Mapper::new(&lib, MapOptions::default());
    let mut ds = Dataset::new(CUT_EMBED_ROWS, CUT_EMBED_COLS, 10);
    let cfg = SampleConfig {
        maps: 20,
        label_mode: mode,
        ..SampleConfig::default()
    };
    generate_dataset(&aig, &mapper, &cfg, &mut ds).expect("maps");
    ds
}

#[test]
fn per_use_emits_more_samples_than_best_per_cut() {
    let per_use = run(LabelMode::PerUse);
    let best = run(LabelMode::BestPerCut);
    assert!(
        per_use.len() > best.len(),
        "{} vs {}",
        per_use.len(),
        best.len()
    );
}

#[test]
fn negatives_extend_best_per_cut_with_worst_class() {
    let best = run(LabelMode::BestPerCut);
    let with_neg = run(LabelMode::BestPerCutWithNegatives);
    assert!(with_neg.len() > best.len());
    let counts = with_neg.class_counts();
    // Negatives all land in the worst class.
    assert!(counts[9] >= with_neg.len() - best.len());
    // And positives are preserved.
    let positives: usize = counts.iter().take(9).sum();
    assert!(positives > 0);
}

#[test]
fn negatives_are_bounded_relative_to_positives() {
    let best = run(LabelMode::BestPerCut);
    let with_neg = run(LabelMode::BestPerCutWithNegatives);
    let negatives = with_neg.len() - best.len();
    assert!(
        negatives <= best.len().max(64),
        "negatives {negatives} exceed balance budget for {} positives",
        best.len()
    );
}

#[test]
fn best_per_cut_labels_are_minima_of_per_use_labels() {
    // Every (embedding) in BestPerCut must appear in PerUse with a label
    // that is >= the BestPerCut label.
    let per_use = run(LabelMode::PerUse);
    let best = run(LabelMode::BestPerCut);
    use std::collections::HashMap;
    let mut min_label: HashMap<Vec<u32>, u8> = HashMap::new();
    for i in 0..per_use.len() {
        let (x, y) = per_use.sample(i);
        let key: Vec<u32> = x.iter().map(|v| v.to_bits()).collect();
        min_label
            .entry(key)
            .and_modify(|m| *m = (*m).min(y))
            .or_insert(y);
    }
    for i in 0..best.len() {
        let (x, y) = best.sample(i);
        let key: Vec<u32> = x.iter().map(|v| v.to_bits()).collect();
        let expect = min_label
            .get(&key)
            .copied()
            .expect("best sample must exist in per-use");
        assert_eq!(y, expect);
    }
}
