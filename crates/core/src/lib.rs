//! SLAP — the Supervised Learning Approach for Priority-cuts technology
//! mapping (the paper's core contribution).
//!
//! The pipeline (paper §IV):
//!
//! 1. [`embed`] turns every AIG node into the ℝ^1×10 embedding of Table I
//!    and every cut into the ℝ^15×10 matrix of Fig. 2;
//! 2. [`datagen`] generates training data by mapping a circuit many times
//!    under the random-shuffle policy and labelling every cut used in
//!    each cover with the mapping's delay class (10 classes);
//! 3. the CNN of `slap-ml` (Fig. 3) learns to predict a cut's class;
//! 4. [`policy`] implements the three-band filter (§IV-C): keep the
//!    good cuts (classes 0–3) if any, else the average ones (4–6), else
//!    expose only the trivial cut;
//! 5. [`flow::SlapMapper`] wires it together — the `prepare_map` /
//!    inference / `read_cuts` flow of Fig. 4 — in front of the unchanged
//!    Boolean matching and covering of `slap-map`.
//!
//! # Example: train on a small adder, then map with SLAP
//!
//! ```no_run
//! use slap_cell::asap7_mini;
//! use slap_circuits::arith::ripple_carry_adder;
//! use slap_core::{train_slap_model, PipelineConfig, SlapMapper};
//! use slap_map::{MapOptions, Mapper};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let lib = asap7_mini();
//! let mapper = Mapper::new(&lib, MapOptions::default());
//! let circuits = vec![ripple_carry_adder(16)];
//! let (model, report) = train_slap_model(&circuits, &mapper, &PipelineConfig::default());
//! println!("10-class val accuracy: {:.1}%", report.val_accuracy * 100.0);
//!
//! let slap = SlapMapper::new(&mapper, model, Default::default());
//! let target = ripple_carry_adder(32);
//! let (netlist, stats) = slap.map(&target)?;
//! println!("delay {} ps with {} cuts kept", netlist.delay(), stats.cuts_kept);
//! # Ok(())
//! # }
//! ```

pub mod datagen;
pub mod embed;
pub mod flow;
pub mod policy;

pub use datagen::{generate_dataset, generate_dataset_session, LabelMode, MapSample, SampleConfig};
pub use embed::{
    feature_groups, EmbeddingContext, CUT_EMBED_COLS, CUT_EMBED_DIM, CUT_EMBED_ROWS, NODE_EMBED_DIM,
};
pub use flow::{train_slap_model, PipelineConfig, SlapConfig, SlapMapper, SlapStats};
pub use policy::BandPolicy;
pub use slap_ml::KernelTier;
