//! Node and cut embeddings (paper §IV-A, Table I, Fig. 2).

use slap_aig::{Aig, NodeId};
use slap_cuts::{cut_features, Cut, CutFeatures, NUM_CUT_FEATURES};
use slap_ml::FeatureGroup;

/// Width of a node embedding (Table I: 4 node features + 3 per child).
pub const NODE_EMBED_DIM: usize = 10;
/// Rows of a cut embedding: root + 5 leaves + 9 cut-feature rows.
pub const CUT_EMBED_ROWS: usize = 15;
/// Columns of a cut embedding (= [`NODE_EMBED_DIM`]).
pub const CUT_EMBED_COLS: usize = NODE_EMBED_DIM;
/// Flattened cut-embedding length.
pub const CUT_EMBED_DIM: usize = CUT_EMBED_ROWS * CUT_EMBED_COLS;

/// Precomputed per-circuit embedding state — the paper's hash table of
/// node tensors keyed by node id, plus the complemented-fanout flags and
/// reverse levels both embeddings need.
#[derive(Clone, Debug)]
pub struct EmbeddingContext {
    node_embeddings: Vec<[f32; NODE_EMBED_DIM]>,
    compl_flags: Vec<bool>,
}

impl EmbeddingContext {
    /// Builds the context for a circuit in one pass.
    pub fn new(aig: &Aig) -> EmbeddingContext {
        let compl_flags = aig.complemented_fanout_flags();
        let rlvl = aig.reverse_levels();
        let mut node_embeddings = vec![[0f32; NODE_EMBED_DIM]; aig.num_nodes()];
        for n in aig.node_ids() {
            let mut e = [0f32; NODE_EMBED_DIM];
            e[0] = compl_flags[n.index()] as u32 as f32;
            e[1] = aig.level_of(n) as f32;
            e[2] = aig.fanout_of(n) as f32;
            e[3] = rlvl[n.index()] as f32;
            if aig.is_and(n) {
                let (f0, f1) = aig.fanins(n);
                e[4] = f0.is_complement() as u32 as f32;
                e[5] = aig.level_of(f0.node()) as f32;
                e[6] = aig.fanout_of(f0.node()) as f32;
                e[7] = f1.is_complement() as u32 as f32;
                e[8] = aig.level_of(f1.node()) as f32;
                e[9] = aig.fanout_of(f1.node()) as f32;
            }
            node_embeddings[n.index()] = e;
        }
        EmbeddingContext {
            node_embeddings,
            compl_flags,
        }
    }

    /// The Table I embedding of a node.
    pub fn node_embedding(&self, n: NodeId) -> &[f32; NODE_EMBED_DIM] {
        &self.node_embeddings[n.index()]
    }

    /// The complemented-fanout flags (shared with cut-feature extraction).
    pub fn compl_flags(&self) -> &[bool] {
        &self.compl_flags
    }

    /// The Fig. 2 cut embedding: rows 0–5 are the node embeddings of the
    /// root and the (up to five) leaves, zero-padded; rows 6–14 broadcast
    /// the nine structural cut features across the columns.
    ///
    /// # Panics
    ///
    /// Panics if the cut is invalid for `root`.
    pub fn cut_embedding(&self, aig: &Aig, root: NodeId, cut: &Cut) -> Vec<f32> {
        let features = cut_features(aig, root, cut, &self.compl_flags);
        self.cut_embedding_with_features(root, cut, &features)
    }

    /// Same as [`EmbeddingContext::cut_embedding`] with precomputed
    /// features (avoids re-walking the cone when the caller already has
    /// them).
    pub fn cut_embedding_with_features(
        &self,
        root: NodeId,
        cut: &Cut,
        features: &CutFeatures,
    ) -> Vec<f32> {
        let mut m = vec![0f32; CUT_EMBED_DIM];
        self.cut_embedding_into(root, cut, features, &mut m);
        m
    }

    /// Writes the Fig. 2 embedding into a caller-supplied buffer of
    /// [`CUT_EMBED_DIM`] floats, so bulk scoring (inference, data
    /// generation) reuses one buffer instead of allocating per cut.
    ///
    /// The paper's embedding reserves five leaf rows (k = 5). Wider cuts
    /// — e.g. from the 6-LUT target — embed only their first five leaves;
    /// the nine broadcast feature rows (which include `numLeaves`) still
    /// describe the full cut, so width information is not lost, only the
    /// per-leaf detail of leaves past the fifth.
    ///
    /// # Panics
    ///
    /// Panics if `out` is not exactly [`CUT_EMBED_DIM`] long.
    pub fn cut_embedding_into(
        &self,
        root: NodeId,
        cut: &Cut,
        features: &CutFeatures,
        out: &mut [f32],
    ) {
        assert_eq!(
            out.len(),
            CUT_EMBED_DIM,
            "embedding buffer must hold CUT_EMBED_DIM floats"
        );
        out.fill(0.0);
        out[..NODE_EMBED_DIM].copy_from_slice(self.node_embedding(root));
        for (i, leaf) in cut.leaves().take(5).enumerate() {
            let row = (1 + i) * CUT_EMBED_COLS;
            out[row..row + NODE_EMBED_DIM].copy_from_slice(self.node_embedding(leaf));
        }
        let fv = features.to_vec();
        for (k, &f) in fv.iter().enumerate() {
            let row = (6 + k) * CUT_EMBED_COLS;
            for v in &mut out[row..row + CUT_EMBED_COLS] {
                *v = f;
            }
        }
        debug_assert_eq!(6 + NUM_CUT_FEATURES, CUT_EMBED_ROWS);
    }
}

/// The 19 named feature groups used by the Fig. 5 permutation-importance
/// analysis: the 10 node-embedding columns (taken across the root and
/// leaf rows together) and the 9 cut-feature rows.
pub fn feature_groups() -> Vec<FeatureGroup> {
    let node_names = [
        "invE0", "lvl", "FO", "rLvl", "invE1", "lvlC1", "FOC1", "invE2", "lvlC2", "FOC2",
    ];
    let mut groups = Vec::with_capacity(19);
    for (c, name) in node_names.iter().enumerate() {
        let indices: Vec<usize> = (0..6).map(|r| r * CUT_EMBED_COLS + c).collect();
        groups.push(FeatureGroup::new(format!("emb:{name}"), indices));
    }
    for (k, name) in CutFeatures::names().iter().enumerate() {
        let row = 6 + k;
        let indices: Vec<usize> = (0..CUT_EMBED_COLS)
            .map(|c| row * CUT_EMBED_COLS + c)
            .collect();
        groups.push(FeatureGroup::new(format!("cut:{name}"), indices));
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;
    use slap_aig::Lit;

    /// Reconstructs the paper's Fig. 2 worked example: a node whose
    /// embedding is [1, 3, 1, 0, 1, 2, 2, 1, 2, 1].
    fn fig2_graph() -> (Aig, NodeId, NodeId, NodeId) {
        let mut aig = Aig::new();
        let a = aig.add_pi();
        let b = aig.add_pi();
        let c = aig.add_pi();
        let d = aig.add_pi();
        let n1 = aig.and(a, b); // lvl 1
        let n2 = aig.and(c, d); // lvl 1
        let c1 = aig.and(n1, n2); // lvl 2, will have FO 2
        let c2 = aig.and(n2, !a); // lvl 2, FO 1
        let n13 = aig.and(!c1, !c2); // lvl 3
        let extra = aig.and(c1, d); // gives c1 its second fanout
        aig.add_po(!n13); // inverted PO edge => inv(e0) = 1, rLvl = 0
        aig.add_po(extra);
        (aig, n13.node(), c1.node(), c2.node())
    }

    #[test]
    fn node_embedding_matches_paper_example() {
        let (aig, n13, _, _) = fig2_graph();
        let ctx = EmbeddingContext::new(&aig);
        let e = ctx.node_embedding(n13);
        assert_eq!(e, &[1.0, 3.0, 1.0, 0.0, 1.0, 2.0, 2.0, 1.0, 2.0, 1.0]);
    }

    #[test]
    fn pi_embedding_has_zero_child_features() {
        let (aig, _, _, _) = fig2_graph();
        let ctx = EmbeddingContext::new(&aig);
        let pi = aig.pis()[1]; // b: feeds only n1, plain edge
        let e = ctx.node_embedding(pi);
        assert_eq!(e[0], 0.0); // no complemented fanout
        assert_eq!(e[1], 0.0); // level 0
        assert_eq!(e[2], 1.0); // one fanout
        assert_eq!(&e[4..], &[0.0; 6]);
    }

    #[test]
    fn cut_embedding_layout() {
        let (aig, n13, c1, c2) = fig2_graph();
        let ctx = EmbeddingContext::new(&aig);
        let cut = Cut::from_leaves(&[c1, c2]);
        let m = ctx.cut_embedding(&aig, n13, &cut);
        assert_eq!(m.len(), CUT_EMBED_DIM);
        // Row 0: root embedding.
        assert_eq!(&m[..10], ctx.node_embedding(n13));
        // Rows 1-2: leaf embeddings (sorted order: c1 < c2 by id).
        assert_eq!(&m[10..20], ctx.node_embedding(c1));
        assert_eq!(&m[20..30], ctx.node_embedding(c2));
        // Rows 3-5: zero padding.
        assert!(m[30..60].iter().all(|&v| v == 0.0));
        // Row 6: rootCompl flag broadcast (n13 drives an inverted PO).
        assert!(m[60..70].iter().all(|&v| v == 1.0));
        // Row 7: numLeaves = 2 broadcast.
        assert!(m[70..80].iter().all(|&v| v == 2.0));
        // Row 8: volume = 1 (just n13) broadcast.
        assert!(m[80..90].iter().all(|&v| v == 1.0));
    }

    #[test]
    fn trivial_cut_embedding_works() {
        let (aig, n13, _, _) = fig2_graph();
        let ctx = EmbeddingContext::new(&aig);
        let cut = Cut::trivial(n13);
        let m = ctx.cut_embedding(&aig, n13, &cut);
        // Row 1 = embedding of the single leaf (the root itself).
        assert_eq!(&m[10..20], ctx.node_embedding(n13));
        // Volume row is zero.
        assert!(m[80..90].iter().all(|&v| v == 0.0));
    }

    /// Cuts wider than the paper's k = 5 (e.g. from the 6-LUT target)
    /// embed their first five leaves; the extra leaf shows up only
    /// through the broadcast feature rows (`numLeaves` = 6 here).
    #[test]
    fn six_leaf_cut_embeds_first_five_leaves() {
        let mut aig = Aig::new();
        let lits: Vec<Lit> = (0..6).map(|_| aig.add_pi()).collect();
        let pis: Vec<NodeId> = lits.iter().map(|l| l.node()).collect();
        let mut acc = lits[0];
        for &l in &lits[1..] {
            acc = aig.and(acc, l);
        }
        aig.add_po(acc);
        let root = acc.node();
        let ctx = EmbeddingContext::new(&aig);
        let cut = Cut::from_leaves(&pis);
        assert_eq!(cut.len(), 6);
        let m = ctx.cut_embedding(&aig, root, &cut);
        assert_eq!(m.len(), CUT_EMBED_DIM);
        // Rows 1-5: the first five leaves in sorted order; the sixth has
        // no row of its own.
        for (i, &leaf) in pis.iter().take(5).enumerate() {
            let row = (1 + i) * CUT_EMBED_COLS;
            assert_eq!(&m[row..row + 10], ctx.node_embedding(leaf));
        }
        // Row 7: numLeaves = 6 broadcast — the full width survives in the
        // feature rows.
        assert!(m[70..80].iter().all(|&v| v == 6.0));
    }

    #[test]
    fn nineteen_feature_groups_cover_disjoint_indices() {
        let groups = feature_groups();
        assert_eq!(groups.len(), 19);
        let mut seen = std::collections::HashSet::new();
        for g in &groups {
            for &i in &g.indices {
                assert!(i < CUT_EMBED_DIM);
                assert!(seen.insert(i), "index {i} in two groups");
            }
        }
        // 10 columns × 6 rows + 9 rows × 10 columns = 150 = full coverage.
        assert_eq!(seen.len(), CUT_EMBED_DIM);
        let _ = Lit::FALSE;
    }
}
