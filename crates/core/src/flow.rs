//! The end-to-end SLAP flow (paper Fig. 4): `prepare_map` → inference →
//! `read_cuts` → map.
//!
//! Inference runs in two passes over the cut arena (see
//! [`SlapMapper::classify_cuts`]): collect every cut embedding into one
//! flat buffer, then batch-classify the whole circuit through the
//! `slap-ml` kernel layer in `slap-par` chunks with in-order reassembly
//! — bit-identical to scoring each cut alone, at a fraction of the cost.

use slap_aig::Aig;
use slap_cuts::{cut_features, enumerate_cuts, CutArena, CutConfig, UnlimitedPolicy};
use slap_map::{AsicTarget, MapError, MapSession, MappedNetlist, Mapper, Target};
use slap_ml::{
    CnnConfig, CutCnn, Dataset, InferenceScratch, KernelTier, QuantScratch, QuantizedCnn,
    TrainConfig, TrainReport,
};

use crate::datagen::{generate_dataset, SampleConfig};
use crate::embed::{EmbeddingContext, CUT_EMBED_COLS, CUT_EMBED_DIM, CUT_EMBED_ROWS};
use crate::policy::BandPolicy;

/// SLAP inference-time configuration.
#[derive(Clone, Debug)]
pub struct SlapConfig {
    /// Cut feasibility bound for `prepare_map` (paper: k = 5).
    pub cut_config: CutConfig,
    /// Per-node cap of the exhaustive enumeration feeding inference.
    pub unlimited_cap: usize,
    /// The class bands of §IV-C.
    pub policy: BandPolicy,
    /// Which kernel tier scores cuts: the bit-identical f32 default or
    /// the opt-in int8 quantized tier (DESIGN.md §13).
    pub kernel: KernelTier,
}

impl SlapConfig {
    /// Paper defaults with the cut bound lowered to the LUT width, so
    /// every scored cut is realizable by a single `k`-input LUT.
    pub fn for_lut(k: usize) -> SlapConfig {
        SlapConfig {
            cut_config: CutConfig::with_k(k),
            ..SlapConfig::default()
        }
    }
}

impl Default for SlapConfig {
    fn default() -> SlapConfig {
        SlapConfig {
            cut_config: CutConfig::default(),
            unlimited_cap: 1000,
            policy: BandPolicy::paper(),
            kernel: KernelTier::F32,
        }
    }
}

/// Accounting for one SLAP mapping run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SlapStats {
    /// Cuts enumerated and scored by the CNN.
    pub cuts_scored: usize,
    /// Cuts surviving the band policy (exposed via `read_cuts`).
    pub cuts_kept: usize,
    /// Histogram of predicted classes over all scored cuts.
    pub class_histogram: Vec<usize>,
    /// Nodes whose every cut was predicted bad (trivial-cut-only nodes).
    pub nodes_all_bad: usize,
}

impl SlapStats {
    /// Checks internal consistency: the class histogram partitions the
    /// scored cuts, and no more cuts are kept than were scored.
    ///
    /// # Panics
    ///
    /// Panics with a description of the violated invariant.
    pub fn check_invariants(&self) {
        let histo_total: usize = self.class_histogram.iter().sum();
        assert_eq!(
            histo_total, self.cuts_scored,
            "class_histogram must sum to cuts_scored"
        );
        assert!(
            self.cuts_kept <= self.cuts_scored,
            "cuts_kept ({}) exceeds cuts_scored ({})",
            self.cuts_kept,
            self.cuts_scored
        );
    }

    /// One JSONL line with every field (histogram as an array).
    pub fn to_json_line(&self) -> String {
        let mut r = slap_obs::Record::new();
        r.push("cuts_scored", self.cuts_scored);
        r.push("cuts_kept", self.cuts_kept);
        r.push(
            "class_histogram",
            slap_obs::Value::Array(
                self.class_histogram
                    .iter()
                    .map(|&c| slap_obs::Value::U64(c as u64))
                    .collect(),
            ),
        );
        r.push("nodes_all_bad", self.nodes_all_bad);
        r.to_json_line()
    }
}

impl std::fmt::Display for SlapStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "scored={} kept={} all-bad-nodes={} classes={:?}",
            self.cuts_scored, self.cuts_kept, self.nodes_all_bad, self.class_histogram
        )
    }
}

/// The SLAP mapper: a pre-trained cut classifier in front of the
/// unchanged matching/covering engine.
///
/// See the [crate documentation](crate) for an end-to-end example.
#[derive(Debug)]
pub struct SlapMapper<'a, T: Target = AsicTarget<'a>> {
    mapper: &'a Mapper<'a, T>,
    model: CutCnn,
    /// The quantized twin of `model`, built eagerly when the config
    /// selects the int8 tier (quantization is cheap and pure, so doing
    /// it once at construction keeps `classify_cuts` read-only).
    quant: Option<QuantizedCnn>,
    config: SlapConfig,
}

impl<'a, T: Target> SlapMapper<'a, T> {
    /// Wraps a mapper with a trained model. When `config.kernel` selects
    /// the int8 tier the model is post-training-quantized here, once.
    pub fn new(mapper: &'a Mapper<'a, T>, model: CutCnn, config: SlapConfig) -> SlapMapper<'a, T> {
        let quant = match config.kernel {
            KernelTier::F32 => None,
            KernelTier::Int8 => Some(QuantizedCnn::from_model(&model)),
        };
        SlapMapper {
            mapper,
            model,
            quant,
            config,
        }
    }

    /// The trained model.
    pub fn model(&self) -> &CutCnn {
        &self.model
    }

    /// The underlying mapper.
    pub fn mapper(&self) -> &Mapper<'a, T> {
        self.mapper
    }

    /// Maps a circuit with CNN-filtered cuts and returns the netlist plus
    /// SLAP-side statistics. Matching, covering, and area recovery are
    /// exactly those of the baseline mapper — only the cut list changes.
    ///
    /// # Errors
    ///
    /// Propagates [`MapError`] from the covering engine.
    pub fn map(&self, aig: &Aig) -> Result<(MappedNetlist, SlapStats), MapError> {
        // One-shot maps stay cold (a fresh cache could not pay for
        // itself); callers mapping the same circuit repeatedly pass a
        // session via [`SlapMapper::map_with_session`].
        let mut session = self.mapper.session_cached(aig, false);
        self.map_impl(&mut session)
    }

    /// [`SlapMapper::map`] against a caller-owned [`MapSession`], so the
    /// final covering run shares the session's memoized cut functions and
    /// gate bindings with the other policies mapped on the same circuit.
    /// Bit-identical to [`SlapMapper::map`].
    ///
    /// # Errors
    ///
    /// Propagates [`MapError`] from the covering engine.
    pub fn map_with_session(
        &self,
        session: &mut MapSession<'_, '_, T>,
    ) -> Result<(MappedNetlist, SlapStats), MapError> {
        debug_assert!(
            std::ptr::eq(self.mapper, session.mapper()),
            "session built on a different mapper"
        );
        self.map_impl(session)
    }

    /// Scores every cut of `cuts` with the CNN and applies the band
    /// policy, returning the flat keep mask (indexed by `CutId` arena
    /// offset) and the SLAP-side statistics — the inference half of
    /// [`SlapMapper::map`], exposed so benches and golden tests can
    /// compare it against a per-sample reference without mapping.
    ///
    /// Two passes over the arena:
    ///
    /// 1. **embed** — walk the AND nodes in id order and pack every
    ///    cut's 15×10 embedding into one flat buffer (an arena of
    ///    samples mirroring the cut arena's layout);
    /// 2. **classify** — batch-score the whole circuit through
    ///    [`CutCnn::predict_batch_into`] in fixed-size `slap-par`
    ///    chunks, reassembled in order, then sweep the per-node class
    ///    slices through [`BandPolicy::select_into`].
    ///
    /// The kernel layer's fixed accumulation order makes the batched
    /// classes bit-identical to per-sample `predict` calls, and the
    /// fixed chunk grid makes them independent of the worker count — so
    /// this is a pure restructuring of the seed's node-by-node loop.
    pub fn classify_cuts(&self, aig: &Aig, cuts: &CutArena) -> (Vec<bool>, SlapStats) {
        /// Samples per scoring batch: big enough to amortize the sweep,
        /// small enough to keep every worker busy on medium circuits.
        /// Fixed (never derived from the thread count) so the batch grid
        /// — and with it every downstream bit — is thread-invariant.
        const SCORE_BATCH: usize = 64;
        const DIM: usize = CUT_EMBED_DIM;
        let _span = slap_obs::span("inference");
        let ctx = EmbeddingContext::new(aig);
        let mut stats = SlapStats {
            class_histogram: vec![0; self.model.config().classes],
            ..SlapStats::default()
        };
        let mut keep: Vec<bool> = vec![false; cuts.total_cuts()];

        // Pass 1: flat arena of cut embeddings, in scoring order (AND
        // nodes ascending, each node's cuts in arena order).
        let mut scored_nodes: Vec<slap_aig::NodeId> = Vec::new();
        let total_scored: usize = aig.and_ids().map(|n| cuts.span_of(n).len()).sum();
        let mut embeddings: Vec<f32> = vec![0.0; total_scored * DIM];
        {
            let _span = slap_obs::span("embed");
            let mut w = 0usize;
            for n in aig.and_ids() {
                if cuts.span_of(n).is_empty() {
                    continue;
                }
                scored_nodes.push(n);
                for (_, cut) in cuts.ids_of(n) {
                    let features = cut_features(aig, n, cut, ctx.compl_flags());
                    ctx.cut_embedding_into(n, cut, &features, &mut embeddings[w..w + DIM]);
                    w += DIM;
                }
            }
            debug_assert_eq!(w, embeddings.len());
        }

        // Pass 2a: batch-classify the whole circuit. Chunks are claimed
        // dynamically by the workers but reassembled by start offset, so
        // the class vector is identical for every thread count. The two
        // kernel tiers differ only in the per-chunk scorer (and its
        // scratch type); the chunk grid and reassembly are shared.
        let classes: Vec<u8> = {
            let _span = slap_obs::span("classify");
            let chunks: Vec<std::ops::Range<usize>> = (0..total_scored)
                .step_by(SCORE_BATCH)
                .map(|s| s..(s + SCORE_BATCH).min(total_scored))
                .collect();
            let per_chunk: Vec<Vec<u8>> = match &self.quant {
                None => {
                    let (per_chunk, _scratch) = slap_par::par_map_with(
                        &chunks,
                        |_w| InferenceScratch::new(),
                        |scratch, _i, range| {
                            let mut out: Vec<u8> = Vec::with_capacity(range.len());
                            self.model.predict_batch_into(
                                &embeddings[range.start * DIM..range.end * DIM],
                                scratch,
                                &mut out,
                            );
                            out
                        },
                    );
                    per_chunk
                }
                Some(quant) => {
                    let (per_chunk, _scratch) = slap_par::par_map_with(
                        &chunks,
                        |_w| QuantScratch::new(),
                        |scratch, _i, range| {
                            let mut out: Vec<u8> = Vec::with_capacity(range.len());
                            quant.predict_batch_into(
                                &embeddings[range.start * DIM..range.end * DIM],
                                scratch,
                                &mut out,
                            );
                            out
                        },
                    );
                    per_chunk
                }
            };
            let mut all = Vec::with_capacity(total_scored);
            for chunk in per_chunk {
                all.extend(chunk);
            }
            all
        };

        // Pass 2b: band policy over each node's class slice. The keep
        // decision is a single flat mask keyed by CutId (the cut's arena
        // offset), so selection needs no per-node cursors or nested
        // buffers.
        {
            let _span = slap_obs::span("select");
            let mut mask: Vec<bool> = Vec::new();
            let mut cursor = 0usize;
            for &n in &scored_nodes {
                let span = cuts.span_of(n);
                let node_classes = &classes[cursor..cursor + span.len()];
                cursor += span.len();
                for &class in node_classes {
                    stats.class_histogram[class as usize] += 1;
                }
                stats.cuts_scored += node_classes.len();
                self.config.policy.select_into(node_classes, &mut mask);
                if mask.iter().all(|&k| !k) {
                    stats.nodes_all_bad += 1;
                }
                stats.cuts_kept += mask.iter().filter(|&&k| k).count();
                for (offset, &kept) in (span.start as usize..).zip(&mask) {
                    keep[offset] = kept;
                }
            }
            debug_assert_eq!(cursor, classes.len());
        }
        (keep, stats)
    }

    fn map_impl(
        &self,
        session: &mut MapSession<'_, '_, T>,
    ) -> Result<(MappedNetlist, SlapStats), MapError> {
        let aig = session.aig();
        let _slap_span = slap_obs::span("slap");
        // prepare_map: exhaustive k-cut enumeration + features/embeddings.
        let mut cuts = enumerate_cuts(
            aig,
            &self.config.cut_config,
            &mut UnlimitedPolicy::with_cap(self.config.unlimited_cap),
        );
        // Inference: two-pass batched scoring + band selection.
        let (keep, stats) = self.classify_cuts(aig, &cuts);
        let reg = slap_obs::Registry::global();
        reg.counter("slap.cuts_scored")
            .add(stats.cuts_scored as u64);
        reg.counter("slap.cuts_kept").add(stats.cuts_kept as u64);
        // read_cuts: keep exactly the selected cuts. Nodes left empty fall
        // back to their structural cut so the cover stays realizable (the
        // paper's trivial-cut case).
        cuts.retain_with_ids(aig, |_, id, _| keep[id.index()], true);
        let netlist = session.map_with_cuts(&cuts)?;
        if cfg!(debug_assertions) {
            stats.check_invariants();
        }
        Ok((netlist, stats))
    }
}

/// Training-pipeline configuration: sampling plus CNN hyper-parameters.
#[derive(Clone, Debug, Default)]
pub struct PipelineConfig {
    /// Random-map sampling settings (per circuit).
    pub sample: SampleConfig,
    /// CNN training settings.
    pub train: TrainConfig,
    /// Model architecture (paper defaults).
    pub model: CnnConfig,
    /// Weight-initialization seed.
    pub model_seed: u64,
}

/// Generates a dataset from `circuits` (paper: 16-bit ripple-carry and
/// carry-lookahead adders) and trains the Fig. 3 CNN.
///
/// # Panics
///
/// Panics if `circuits` is empty or mapping one of them fails (the
/// bundled library always maps).
pub fn train_slap_model<T: Target>(
    circuits: &[Aig],
    mapper: &Mapper<'_, T>,
    config: &PipelineConfig,
) -> (CutCnn, TrainReport) {
    assert!(
        !circuits.is_empty(),
        "at least one training circuit required"
    );
    let mut dataset = Dataset::new(CUT_EMBED_ROWS, CUT_EMBED_COLS, config.sample.classes);
    for aig in circuits {
        generate_dataset(aig, mapper, &config.sample, &mut dataset)
            .expect("training circuit must map");
    }
    let mut model = CutCnn::new(&config.model, config.model_seed);
    let report = model.train(&dataset, &config.train);
    (model, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use slap_cell::asap7_mini;
    use slap_circuits::arith::{carry_lookahead_adder, ripple_carry_adder};
    use slap_map::MapOptions;
    use slap_ml::CnnConfig;

    fn quick_pipeline() -> PipelineConfig {
        PipelineConfig {
            sample: SampleConfig {
                maps: 16,
                ..SampleConfig::default()
            },
            train: TrainConfig {
                epochs: 4,
                ..TrainConfig::default()
            },
            model: CnnConfig {
                filters: 16,
                ..CnnConfig::paper()
            },
            model_seed: 5,
        }
    }

    #[test]
    fn end_to_end_train_and_map_preserves_function() {
        let lib = asap7_mini();
        let mapper = Mapper::new(&lib, MapOptions::default());
        let train_set = vec![ripple_carry_adder(8)];
        let (model, report) = train_slap_model(&train_set, &mapper, &quick_pipeline());
        assert!(report.train_samples > 0);
        let slap = SlapMapper::new(&mapper, model, SlapConfig::default());
        let target = carry_lookahead_adder(12);
        let (netlist, stats) = slap.map(&target).expect("maps");
        assert!(
            netlist.verify_against(&target, 16, 77),
            "SLAP result must stay equivalent"
        );
        assert!(stats.cuts_scored > 0);
        assert!(stats.cuts_kept <= stats.cuts_scored);
        let histo_total: usize = stats.class_histogram.iter().sum();
        assert_eq!(histo_total, stats.cuts_scored);
    }

    #[test]
    fn slap_reduces_cuts_exposed_versus_unlimited() {
        let lib = asap7_mini();
        let mapper = Mapper::new(&lib, MapOptions::default());
        let train_set = vec![ripple_carry_adder(8)];
        let (model, _) = train_slap_model(&train_set, &mapper, &quick_pipeline());
        let slap = SlapMapper::new(&mapper, model, SlapConfig::default());
        let target = ripple_carry_adder(16);
        let (netlist, _) = slap.map(&target).expect("maps");
        let unlimited = mapper
            .map_unlimited(&target, &CutConfig::default(), 1000)
            .expect("maps");
        assert!(
            netlist.stats().cuts_considered <= unlimited.stats().cuts_considered,
            "SLAP ({}) must not exceed unlimited ({})",
            netlist.stats().cuts_considered,
            unlimited.stats().cuts_considered
        );
    }

    #[test]
    fn lut_end_to_end_train_and_map_preserves_function() {
        let k = 4;
        let mapper = slap_map::LutMapper::lut(k, MapOptions::default());
        let train_set = vec![ripple_carry_adder(8)];
        let (model, report) = train_slap_model(&train_set, &mapper, &quick_pipeline());
        assert!(report.train_samples > 0);
        let slap = SlapMapper::new(&mapper, model, SlapConfig::for_lut(k));
        let target = carry_lookahead_adder(12);
        let (netlist, stats) = slap.map(&target).expect("maps");
        assert!(
            netlist.verify_against(&target, 16, 78),
            "SLAP LUT result must stay equivalent"
        );
        assert!(stats.cuts_scored > 0);
        // Unit cost model survives the SLAP path end to end.
        assert_eq!(netlist.area(), netlist.stats().num_instances as f32);
        assert_eq!(netlist.delay().fract(), 0.0);
        assert!(netlist
            .instances()
            .iter()
            .all(|i| i.lut_tt().is_some() && i.inputs.len() <= k));
    }

    #[test]
    fn int8_tier_maps_correctly_and_tracks_f32_keep_mask() {
        let lib = asap7_mini();
        let mapper = Mapper::new(&lib, MapOptions::default());
        let train_set = vec![ripple_carry_adder(8)];
        let (model, _) = train_slap_model(&train_set, &mapper, &quick_pipeline());
        let f32_slap = SlapMapper::new(&mapper, model.clone(), SlapConfig::default());
        let int8_slap = SlapMapper::new(
            &mapper,
            model,
            SlapConfig {
                kernel: KernelTier::Int8,
                ..SlapConfig::default()
            },
        );
        let target = carry_lookahead_adder(12);
        // The int8 map still preserves function and produces sane stats.
        let (netlist, stats) = int8_slap.map(&target).expect("maps");
        assert!(netlist.verify_against(&target, 16, 79));
        stats.check_invariants();
        assert!(stats.cuts_scored > 0);
        // Keep masks: same shape, bounded divergence (the golden suite
        // in tests/int8_divergence.rs pins the bound per circuit; this
        // is a cheap sanity floor).
        let cuts = enumerate_cuts(
            &target,
            &CutConfig::default(),
            &mut UnlimitedPolicy::with_cap(1000),
        );
        let (keep_f, _) = f32_slap.classify_cuts(&target, &cuts);
        let (keep_q, _) = int8_slap.classify_cuts(&target, &cuts);
        assert_eq!(keep_f.len(), keep_q.len());
        let differing = keep_f.iter().zip(&keep_q).filter(|(a, b)| a != b).count();
        assert!(
            differing * 2 < keep_f.len(),
            "int8 keep mask diverges on {differing}/{} cuts",
            keep_f.len()
        );
        // And the int8 tier itself is deterministic.
        let (keep_q2, _) = int8_slap.classify_cuts(&target, &cuts);
        assert_eq!(keep_q, keep_q2);
    }

    #[test]
    fn slap_stats_invariants_display_and_json() {
        let stats = SlapStats {
            cuts_scored: 5,
            cuts_kept: 3,
            class_histogram: vec![2, 3],
            nodes_all_bad: 1,
        };
        stats.check_invariants();
        let line = stats.to_json_line();
        let fields = slap_obs::parse_object(line.trim()).expect("valid json");
        let get = |k: &str| fields.iter().find(|(n, _)| n == k).map(|(_, v)| v);
        assert_eq!(get("cuts_scored").and_then(|v| v.as_u64()), Some(5));
        assert_eq!(get("cuts_kept").and_then(|v| v.as_u64()), Some(3));
        assert!(format!("{stats}").contains("scored=5"));
    }

    #[test]
    #[should_panic(expected = "class_histogram")]
    fn slap_stats_bad_histogram_panics() {
        let stats = SlapStats {
            cuts_scored: 5,
            cuts_kept: 1,
            class_histogram: vec![1],
            nodes_all_bad: 0,
        };
        stats.check_invariants();
    }

    #[test]
    #[should_panic(expected = "cuts_kept")]
    fn slap_stats_kept_exceeding_scored_panics() {
        let stats = SlapStats {
            cuts_scored: 2,
            cuts_kept: 3,
            class_histogram: vec![2],
            nodes_all_bad: 0,
        };
        stats.check_invariants();
    }

    #[test]
    fn slap_map_with_session_matches_one_shot() {
        let lib = asap7_mini();
        let mapper = Mapper::new(&lib, MapOptions::default());
        let train_set = vec![ripple_carry_adder(8)];
        let (model, _) = train_slap_model(&train_set, &mapper, &quick_pipeline());
        let slap = SlapMapper::new(&mapper, model, SlapConfig::default());
        let target = carry_lookahead_adder(12);
        let (cold_nl, cold_stats) = slap.map(&target).expect("maps");
        let mut session = mapper.session_cached(&target, true);
        for round in 0..2 {
            let (warm_nl, warm_stats) = slap.map_with_session(&mut session).expect("maps");
            assert_eq!(warm_nl.instances(), cold_nl.instances(), "round {round}");
            assert_eq!(warm_nl.area().to_bits(), cold_nl.area().to_bits());
            assert_eq!(warm_nl.delay().to_bits(), cold_nl.delay().to_bits());
            assert_eq!(warm_stats, cold_stats, "round {round}");
        }
        assert!(session.num_cached_functions() > 0);
    }

    #[test]
    fn accessors() {
        let lib = asap7_mini();
        let mapper = Mapper::new(&lib, MapOptions::default());
        let model = CutCnn::new(
            &CnnConfig {
                filters: 4,
                ..CnnConfig::paper()
            },
            1,
        );
        let slap = SlapMapper::new(&mapper, model, SlapConfig::default());
        assert_eq!(slap.model().config().filters, 4);
        assert_eq!(slap.mapper().library().name(), "asap7-mini");
    }
}
