//! The three-band cut selection policy (paper §IV-C).

/// The QoR-class bands: cuts predicted in `0..=good_max` are the top
/// options; if none exist, cuts in `good_max+1..=avg_max` are offered;
/// otherwise the node exposes only its trivial cut.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BandPolicy {
    /// Highest class still considered "good" (paper: 3).
    pub good_max: u8,
    /// Highest class still considered "average" (paper: 6).
    pub avg_max: u8,
    /// When every cut of a node is predicted bad, keep the single
    /// best-predicted cut instead of dropping to the trivial cut. The
    /// paper drops to the trivial cut; keeping one cut is a quality
    /// guard for circuits far from the training distribution
    /// (documented deviation, on by default, disable for the literal
    /// paper behaviour).
    pub keep_best_when_all_bad: bool,
}

impl BandPolicy {
    /// The paper's thresholds: good = 0–3, average = 4–6.
    pub fn paper() -> BandPolicy {
        BandPolicy {
            good_max: 3,
            avg_max: 6,
            keep_best_when_all_bad: true,
        }
    }

    /// The literal paper behaviour: all-bad nodes expose only their
    /// trivial cut.
    pub fn paper_strict() -> BandPolicy {
        BandPolicy {
            keep_best_when_all_bad: false,
            ..BandPolicy::paper()
        }
    }

    /// Given the predicted classes of one node's cuts, returns the keep
    /// mask implementing the band rule.
    pub fn select(&self, classes: &[u8]) -> Vec<bool> {
        let mut mask = Vec::new();
        self.select_into(classes, &mut mask);
        mask
    }

    /// [`BandPolicy::select`] into a caller-owned mask buffer (cleared
    /// and refilled), so per-node selection over a whole circuit reuses
    /// one allocation.
    pub fn select_into(&self, classes: &[u8], mask: &mut Vec<bool>) {
        mask.clear();
        let has_good = classes.iter().any(|&c| c <= self.good_max);
        if has_good {
            mask.extend(classes.iter().map(|&c| c <= self.good_max));
            return;
        }
        let has_avg = classes.iter().any(|&c| c <= self.avg_max);
        if has_avg {
            mask.extend(classes.iter().map(|&c| c <= self.avg_max));
            return;
        }
        mask.resize(classes.len(), false);
        if self.keep_best_when_all_bad {
            if let Some(best) = classes
                .iter()
                .enumerate()
                .min_by_key(|(_, &c)| c)
                .map(|(i, _)| i)
            {
                mask[best] = true;
            }
        }
    }
}

impl Default for BandPolicy {
    fn default() -> BandPolicy {
        BandPolicy::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_only_good_when_available() {
        let p = BandPolicy::paper();
        assert_eq!(p.select(&[0, 3, 4, 7]), vec![true, true, false, false]);
        assert_eq!(p.select(&[9, 2, 9]), vec![false, true, false]);
    }

    #[test]
    fn falls_back_to_average_band() {
        let p = BandPolicy::paper();
        assert_eq!(p.select(&[4, 6, 7]), vec![true, true, false]);
        assert_eq!(p.select(&[5]), vec![true]);
    }

    #[test]
    fn strict_policy_drops_everything_when_all_bad() {
        let p = BandPolicy::paper_strict();
        assert_eq!(p.select(&[7, 8, 9]), vec![false, false, false]);
        assert_eq!(p.select(&[]), Vec::<bool>::new());
    }

    #[test]
    fn default_policy_keeps_single_best_when_all_bad() {
        let p = BandPolicy::paper();
        assert_eq!(p.select(&[9, 7, 8]), vec![false, true, false]);
        assert_eq!(p.select(&[]), Vec::<bool>::new());
    }

    #[test]
    fn select_into_reuses_buffer_and_matches_select() {
        let p = BandPolicy::paper();
        let mut mask = Vec::new();
        let node_classes: [&[u8]; 5] = [&[0, 3, 4, 7], &[4, 6, 7], &[9, 7, 8], &[], &[5]];
        for classes in node_classes {
            p.select_into(classes, &mut mask);
            assert_eq!(mask, p.select(classes), "classes {classes:?}");
        }
        // A long node followed by a short one must not leak stale slots.
        p.select_into(&[0; 8], &mut mask);
        p.select_into(&[9], &mut mask);
        assert_eq!(mask, vec![true]); // keep-best-when-all-bad
    }

    #[test]
    fn custom_thresholds() {
        let p = BandPolicy {
            good_max: 1,
            avg_max: 2,
            keep_best_when_all_bad: false,
        };
        assert_eq!(p.select(&[2, 3]), vec![true, false]);
        assert_eq!(p.select(&[1, 2]), vec![true, false]);
    }
}
