//! Training-data generation (paper §IV-B): many random-shuffle mappings,
//! each labelling the cuts of its cover with the mapping's delay class.

use slap_aig::Aig;
use slap_cuts::CutConfig;
use slap_map::{MapError, MapSession, Mapper, Target};
use slap_ml::Dataset;

use crate::embed::{EmbeddingContext, CUT_EMBED_COLS, CUT_EMBED_DIM, CUT_EMBED_ROWS};

/// Random-map sampling parameters.
#[derive(Clone, Debug)]
pub struct SampleConfig {
    /// Number of random-shuffle mappings per circuit (the paper uses
    /// thousands; a few hundred already yields a wide QoR spread).
    pub maps: usize,
    /// Cuts kept per node by the shuffle policy (the diversity knob).
    pub keep: usize,
    /// Cut feasibility bound.
    pub cut_config: CutConfig,
    /// Base seed; map `i` uses `seed + i`.
    pub seed: u64,
    /// Number of QoR classes (paper: 10).
    pub classes: usize,
    /// Deduplicate mappings with identical (area, delay) before
    /// labelling, as the paper does ("we hash the final QoR by its area
    /// and delay, to have a variety of mappings to learn from").
    pub dedup_qor: bool,
    /// How conflicting labels of a cut reused across maps are resolved.
    pub label_mode: LabelMode,
}

/// Label aggregation across the many mappings a cut participates in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LabelMode {
    /// One data point per (map, cover cut) — the paper's scheme. The same
    /// cut then carries every class it was ever part of, which is noisy
    /// but unbiased.
    PerUse,
    /// One data point per distinct cut, labelled with the best (lowest)
    /// class observed — "can this cut be part of a fast cover?". Cleaner
    /// signal for the keep/discard decision; documented deviation.
    BestPerCut,
    /// [`LabelMode::BestPerCut`] plus negative examples: cuts that exist
    /// in the circuit's full k-cut space but were never chosen by any
    /// sampled cover are labelled with the worst class. Without these,
    /// the training population contains only cover survivors and the
    /// model has no basis to ever discard a cut at inference time
    /// (documented deviation; default).
    BestPerCutWithNegatives,
}

impl Default for SampleConfig {
    fn default() -> SampleConfig {
        SampleConfig {
            maps: 120,
            keep: 8,
            cut_config: CutConfig::default(),
            seed: 1,
            classes: 10,
            dedup_qor: true,
            label_mode: LabelMode::BestPerCutWithNegatives,
        }
    }
}

/// One random mapping's quality record.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MapSample {
    /// The shuffle seed that produced the mapping.
    pub seed: u64,
    /// Total area (µm²).
    pub area: f32,
    /// STA delay (ps).
    pub delay: f32,
    /// Assigned QoR class (0 = fastest in the sample).
    pub class: u8,
}

/// Runs `config.maps` random-shuffle mappings of `aig`, labels each
/// mapping's delay into `classes` bins (min–max scaled over the sample,
/// so class 0 is the fastest observed — the paper's "cuts that minimize
/// delay"), and emits one data point per cover cut.
///
/// Appends into `dataset` (so multiple circuits can share one dataset)
/// and returns the per-map QoR records.
///
/// # Errors
///
/// Propagates [`MapError`] from the underlying mapper.
///
/// # Panics
///
/// Panics if `dataset` has a different shape than the cut embedding or
/// `config.maps == 0`.
pub fn generate_dataset<T: Target>(
    aig: &Aig,
    mapper: &Mapper<'_, T>,
    config: &SampleConfig,
    dataset: &mut Dataset,
) -> Result<Vec<MapSample>, MapError> {
    // The internal session honors `SLAP_CACHE` (set it to `0` for the
    // cold path); all `config.maps` runs of this call share its cache.
    let mut session = mapper.session(aig);
    generate_dataset_session(&mut session, config, dataset)
}

/// [`generate_dataset`] against a caller-owned [`MapSession`], so several
/// datagen calls on the same circuit (epoch resampling, benchmark rounds)
/// reuse one cache instead of rebuilding it. Bit-identical to
/// [`generate_dataset`] — memoization never changes results.
///
/// # Errors
///
/// Propagates [`MapError`] from the underlying mapper.
///
/// # Panics
///
/// Panics if `dataset` has a different shape than the cut embedding or
/// `config.maps == 0`.
pub fn generate_dataset_session<T: Target>(
    session: &mut MapSession<'_, '_, T>,
    config: &SampleConfig,
    dataset: &mut Dataset,
) -> Result<Vec<MapSample>, MapError> {
    let _span = slap_obs::span("datagen");
    assert!(config.maps > 0, "at least one map required");
    assert_eq!(dataset.rows(), CUT_EMBED_ROWS);
    assert_eq!(dataset.cols(), CUT_EMBED_COLS);
    let aig = session.aig();
    let ctx = EmbeddingContext::new(aig);
    let to_run = |seed: u64, netlist: slap_map::MappedNetlist| {
        let qor = (netlist.area().to_bits(), netlist.delay().to_bits());
        let sample = MapSample {
            seed,
            area: netlist.area(),
            delay: netlist.delay(),
            class: 0,
        };
        (sample, netlist.cover_cuts().to_vec(), qor)
    };
    // Each map is an independent shuffle-seeded mapping. Runs the session
    // already memoized (same k/seed/keep on the same AIG ⇒ bit-identical
    // mapping, see `MapSession::cached_run`) are replayed directly — this
    // is what makes repeated datagen on one circuit cheap. The rest fan
    // out across worker threads; results come back in map-index order and
    // are stored (and their cache deltas absorbed) in that order, so the
    // datasets, the session's cache contents, and the returned error (if
    // any) are identical for every thread count and for any warm/cold
    // split. (The sequential path additionally hits cache entries
    // inserted earlier in this very call — same results either way, since
    // cached values are pure.)
    type Run = (
        MapSample,
        Vec<(slap_aig::NodeId, slap_cuts::Cut)>,
        (u32, u32),
    );
    let seed_of = |i: usize| config.seed.wrapping_add(i as u64);
    let mut outcomes: Vec<Option<Run>> = (0..config.maps)
        .map(|i| {
            session
                .cached_run(&config.cut_config, seed_of(i), config.keep)
                .map(|run| {
                    let sample = MapSample {
                        seed: seed_of(i),
                        area: f32::from_bits(run.area_bits),
                        delay: f32::from_bits(run.delay_bits),
                        class: 0,
                    };
                    (sample, run.cover.clone(), (run.area_bits, run.delay_bits))
                })
        })
        .collect();
    let missing: Vec<usize> = (0..config.maps)
        .filter(|&i| outcomes[i].is_none())
        .collect();
    let reg = slap_obs::Registry::global();
    reg.counter("datagen.run_cache_hits")
        .add((config.maps - missing.len()) as u64);
    reg.counter("datagen.run_cache_misses")
        .add(missing.len() as u64);
    let mapped: Vec<(usize, Result<Run, MapError>)> =
        if slap_par::threads() == 1 || slap_par::in_worker() {
            let mut v = Vec::with_capacity(missing.len());
            for &i in &missing {
                let seed = seed_of(i);
                let r = match session.map_shuffled(&config.cut_config, seed, config.keep) {
                    Ok(netlist) => {
                        session.store_run(&config.cut_config, seed, config.keep, &netlist);
                        Ok(to_run(seed, netlist))
                    }
                    Err(e) => Err(e),
                };
                v.push((i, r));
            }
            v
        } else {
            let results = slap_par::par_map(&missing, |_, &i| {
                let (result, delta) =
                    session.map_shuffled_frozen(&config.cut_config, seed_of(i), config.keep);
                (i, result, delta)
            });
            results
                .into_iter()
                .map(|(i, result, delta)| {
                    session.absorb(delta);
                    let seed = seed_of(i);
                    let r = match result {
                        Ok(netlist) => {
                            session.store_run(&config.cut_config, seed, config.keep, &netlist);
                            Ok(to_run(seed, netlist))
                        }
                        Err(e) => Err(e),
                    };
                    (i, r)
                })
                .collect()
        };
    // `mapped` is in ascending map-index order and replayed runs cannot
    // fail, so propagating the first miss error here reproduces the
    // error a fully cold call would return.
    for (i, r) in mapped {
        outcomes[i] = Some(r?);
    }
    let mut records: Vec<(MapSample, Vec<(slap_aig::NodeId, slap_cuts::Cut)>)> =
        Vec::with_capacity(config.maps);
    let mut seen_qor: std::collections::HashSet<(u32, u32)> = std::collections::HashSet::new();
    for outcome in outcomes {
        let (sample, cover, qor) = outcome.expect("every map index resolved above");
        if config.dedup_qor && !seen_qor.insert(qor) {
            continue;
        }
        records.push((sample, cover));
    }
    let min = records
        .iter()
        .map(|(s, _)| s.delay)
        .fold(f32::INFINITY, f32::min);
    let max = records.iter().map(|(s, _)| s.delay).fold(0.0f32, f32::max);
    let span = (max - min).max(1e-6);
    let classes = config.classes as f32;
    for (sample, _) in records.iter_mut() {
        let norm = (sample.delay - min) / span;
        sample.class = ((norm * classes) as usize).min(config.classes - 1) as u8;
    }
    // One embedding buffer serves every emitted sample; `Dataset::push`
    // copies it into the dataset's flat storage.
    let mut embedding = [0f32; CUT_EMBED_DIM];
    let embed_into =
        |ctx: &EmbeddingContext, root: slap_aig::NodeId, cut: &slap_cuts::Cut, buf: &mut [f32]| {
            let features = slap_cuts::cut_features(aig, root, cut, ctx.compl_flags());
            ctx.cut_embedding_into(root, cut, &features, buf);
        };
    match config.label_mode {
        LabelMode::PerUse => {
            for (sample, cover) in &records {
                for (root, cut) in cover {
                    embed_into(&ctx, *root, cut, &mut embedding);
                    dataset.push(&embedding, sample.class);
                }
            }
        }
        LabelMode::BestPerCut | LabelMode::BestPerCutWithNegatives => {
            let mut best: std::collections::HashMap<(slap_aig::NodeId, slap_cuts::Cut), u8> =
                std::collections::HashMap::new();
            for (sample, cover) in &records {
                for &(root, cut) in cover {
                    best.entry((root, cut))
                        .and_modify(|c| *c = (*c).min(sample.class))
                        .or_insert(sample.class);
                }
            }
            // Deterministic order: sort by (root, leaves).
            let mut entries: Vec<_> = best.iter().map(|(k, v)| (*k, *v)).collect();
            entries.sort_by(|a, b| {
                (a.0 .0, a.0 .1.leaf_indices()).cmp(&(b.0 .0, b.0 .1.leaf_indices()))
            });
            let num_positive = entries.len();
            for ((root, cut), class) in entries {
                embed_into(&ctx, root, &cut, &mut embedding);
                dataset.push(&embedding, class);
            }
            if config.label_mode == LabelMode::BestPerCutWithNegatives {
                // Enumerate the full cut space and emit never-used cuts as
                // worst-class examples, bounded to balance the positives.
                let all = slap_cuts::enumerate_cuts(
                    aig,
                    &config.cut_config,
                    &mut slap_cuts::UnlimitedPolicy::new(),
                );
                let worst = (config.classes - 1) as u8;
                let budget = num_positive.max(64);
                let mut emitted = 0usize;
                let mut rng = slap_aig::Rng64::seed_from(config.seed ^ 0xBAD_C0DE);
                'outer: for n in aig.and_ids() {
                    for cut in all.cuts_of(n) {
                        if best.contains_key(&(n, *cut)) {
                            continue;
                        }
                        // Thin deterministically so negatives spread over
                        // the whole circuit instead of its low node ids.
                        if rng.f32() > 0.5 {
                            continue;
                        }
                        embed_into(&ctx, n, cut, &mut embedding);
                        dataset.push(&embedding, worst);
                        emitted += 1;
                        if emitted >= budget {
                            break 'outer;
                        }
                    }
                }
            }
        }
    }
    Ok(records.into_iter().map(|(s, _)| s).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use slap_cell::asap7_mini;
    use slap_circuits::arith::ripple_carry_adder;
    use slap_map::MapOptions;

    #[test]
    fn generates_labelled_samples_from_adder() {
        let aig = ripple_carry_adder(8);
        let lib = asap7_mini();
        let mapper = Mapper::new(&lib, MapOptions::default());
        let mut ds = Dataset::new(CUT_EMBED_ROWS, CUT_EMBED_COLS, 10);
        let cfg = SampleConfig {
            maps: 12,
            ..SampleConfig::default()
        };
        let samples = generate_dataset(&aig, &mapper, &cfg, &mut ds).expect("maps");
        assert!(
            samples.len() <= 12 && samples.len() > 2,
            "{}",
            samples.len()
        );
        assert!(!ds.is_empty());
        // Class 0 is assigned to the fastest map.
        let fastest = samples
            .iter()
            .min_by(|a, b| a.delay.partial_cmp(&b.delay).expect("finite"))
            .expect("nonempty");
        assert_eq!(fastest.class, 0);
        // All classes within range.
        assert!(samples.iter().all(|s| (s.class as usize) < 10));
        // The sample should exhibit QoR diversity.
        let distinct: std::collections::HashSet<u32> =
            samples.iter().map(|s| s.delay.to_bits()).collect();
        assert!(
            distinct.len() > 3,
            "only {} distinct delays",
            distinct.len()
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let aig = ripple_carry_adder(8);
        let lib = asap7_mini();
        let mapper = Mapper::new(&lib, MapOptions::default());
        let cfg = SampleConfig {
            maps: 6,
            ..SampleConfig::default()
        };
        let mut d1 = Dataset::new(CUT_EMBED_ROWS, CUT_EMBED_COLS, 10);
        let mut d2 = Dataset::new(CUT_EMBED_ROWS, CUT_EMBED_COLS, 10);
        let s1 = generate_dataset(&aig, &mapper, &cfg, &mut d1).expect("maps");
        let s2 = generate_dataset(&aig, &mapper, &cfg, &mut d2).expect("maps");
        assert_eq!(s1, s2);
        assert_eq!(d1.len(), d2.len());
    }

    #[test]
    fn parallel_datagen_is_bit_identical_to_sequential() {
        let aig = ripple_carry_adder(8);
        let lib = asap7_mini();
        let mapper = Mapper::new(&lib, MapOptions::default());
        let cfg = SampleConfig {
            maps: 10,
            ..SampleConfig::default()
        };
        let prev = slap_par::threads();
        slap_par::set_threads(1);
        let mut seq_ds = Dataset::new(CUT_EMBED_ROWS, CUT_EMBED_COLS, 10);
        let seq = generate_dataset(&aig, &mapper, &cfg, &mut seq_ds).expect("maps");
        for t in [2, 8] {
            slap_par::set_threads(t);
            let mut ds = Dataset::new(CUT_EMBED_ROWS, CUT_EMBED_COLS, 10);
            let samples = generate_dataset(&aig, &mapper, &cfg, &mut ds).expect("maps");
            assert_eq!(samples, seq, "threads={t}");
            assert_eq!(ds, seq_ds, "threads={t}");
            assert_eq!(ds.content_hash(), seq_ds.content_hash(), "threads={t}");
        }
        slap_par::set_threads(prev);
    }

    #[test]
    fn session_datagen_is_bit_identical_to_cold_and_hits_cache() {
        let aig = ripple_carry_adder(8);
        let lib = asap7_mini();
        let mapper = Mapper::new(&lib, MapOptions::default());
        let cfg = SampleConfig {
            maps: 6,
            ..SampleConfig::default()
        };
        let mut cold_ds = Dataset::new(CUT_EMBED_ROWS, CUT_EMBED_COLS, 10);
        let mut cold_session = mapper.session_cached(&aig, false);
        let cold = generate_dataset_session(&mut cold_session, &cfg, &mut cold_ds).expect("maps");
        assert_eq!(cold_session.num_cached_functions(), 0);
        let mut session = mapper.session_cached(&aig, true);
        for round in 0..2 {
            let mut ds = Dataset::new(CUT_EMBED_ROWS, CUT_EMBED_COLS, 10);
            let warm = generate_dataset_session(&mut session, &cfg, &mut ds).expect("maps");
            assert_eq!(warm, cold, "round {round}: samples diverged");
            assert_eq!(ds, cold_ds, "round {round}: dataset diverged");
            assert_eq!(ds.content_hash(), cold_ds.content_hash());
        }
        assert!(session.num_cached_functions() > 0);
        assert!(session.num_interned_tts() > 0);
        // Every (seed, keep) run of the two rounds is memoized once; the
        // second round replayed them without re-mapping.
        assert_eq!(session.num_cached_runs(), 6);
    }

    #[test]
    fn partially_warm_session_datagen_matches_cold_at_every_thread_count() {
        let aig = ripple_carry_adder(8);
        let lib = asap7_mini();
        let mapper = Mapper::new(&lib, MapOptions::default());
        let small = SampleConfig {
            maps: 6,
            ..SampleConfig::default()
        };
        let big = SampleConfig {
            maps: 10,
            ..SampleConfig::default()
        };
        let prev = slap_par::threads();
        slap_par::set_threads(1);
        let mut cold_ds = Dataset::new(CUT_EMBED_ROWS, CUT_EMBED_COLS, 10);
        let mut cold_session = mapper.session_cached(&aig, false);
        let cold = generate_dataset_session(&mut cold_session, &big, &mut cold_ds).expect("maps");
        // The big call replays the small call's 6 memoized runs and maps
        // only the 4 novel seeds — on every thread count the result is
        // bit-identical to the cold big call.
        for t in [1, 2, 8] {
            slap_par::set_threads(t);
            let mut session = mapper.session_cached(&aig, true);
            let mut ds = Dataset::new(CUT_EMBED_ROWS, CUT_EMBED_COLS, 10);
            generate_dataset_session(&mut session, &small, &mut ds).expect("maps");
            assert_eq!(session.num_cached_runs(), 6, "threads={t}");
            let mut ds = Dataset::new(CUT_EMBED_ROWS, CUT_EMBED_COLS, 10);
            let warm = generate_dataset_session(&mut session, &big, &mut ds).expect("maps");
            assert_eq!(session.num_cached_runs(), 10, "threads={t}");
            assert_eq!(warm, cold, "threads={t}: samples diverged");
            assert_eq!(ds, cold_ds, "threads={t}: dataset diverged");
            assert_eq!(ds.content_hash(), cold_ds.content_hash(), "threads={t}");
        }
        slap_par::set_threads(prev);
    }

    #[test]
    fn lut_datagen_labels_by_lut_depth() {
        let aig = ripple_carry_adder(8);
        let mapper = slap_map::LutMapper::lut(4, MapOptions::default());
        let cfg = SampleConfig {
            maps: 8,
            ..SampleConfig::default()
        };
        let mut ds = Dataset::new(CUT_EMBED_ROWS, CUT_EMBED_COLS, 10);
        let samples = generate_dataset(&aig, &mapper, &cfg, &mut ds).expect("maps");
        assert!(!ds.is_empty());
        for s in &samples {
            // Unit LUT cost model: area counts LUTs, delay counts levels.
            assert_eq!(s.area.fract(), 0.0, "LUT area must be a count");
            assert_eq!(s.delay.fract(), 0.0, "LUT delay must count levels");
            assert!((s.class as usize) < 10);
        }
        // Deterministic across repeats, like the ASIC path.
        let mut ds2 = Dataset::new(CUT_EMBED_ROWS, CUT_EMBED_COLS, 10);
        let samples2 = generate_dataset(&aig, &mapper, &cfg, &mut ds2).expect("maps");
        assert_eq!(samples, samples2);
        assert_eq!(ds.content_hash(), ds2.content_hash());
    }

    #[test]
    fn multiple_circuits_share_a_dataset() {
        let lib = asap7_mini();
        let mapper = Mapper::new(&lib, MapOptions::default());
        let cfg = SampleConfig {
            maps: 4,
            ..SampleConfig::default()
        };
        let mut ds = Dataset::new(CUT_EMBED_ROWS, CUT_EMBED_COLS, 10);
        let a = ripple_carry_adder(8);
        let b = ripple_carry_adder(12);
        generate_dataset(&a, &mapper, &cfg, &mut ds).expect("maps");
        let after_first = ds.len();
        generate_dataset(&b, &mapper, &cfg, &mut ds).expect("maps");
        assert!(ds.len() > after_first);
    }
}
