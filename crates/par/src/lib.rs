//! Deterministic scoped-thread parallelism for the SLAP pipeline.
//!
//! No external dependencies, `std::thread::scope` only (plus `slap-obs`
//! for span-context propagation). Every primitive in this
//! crate has a determinism contract: the returned values are a pure
//! function of the inputs, independent of the thread count and of how the
//! scheduler interleaves workers. Callers get that guarantee by
//! construction — results are collected per chunk and merged back in item
//! order, never in completion order.
//!
//! The effective thread count is a process-wide setting resolved from, in
//! priority order: [`set_threads`] (e.g. a `--threads` flag), the
//! `SLAP_THREADS` environment variable, and finally
//! [`std::thread::available_parallelism`]. Code inside a worker never
//! spawns nested pools: the primitives detect re-entry and run inline,
//! so outer-level parallelism (e.g. per-circuit) composes with inner
//! parallel kernels (e.g. per-level cut enumeration) without
//! oversubscription or surprise recursion.
//!
//! Workers inherit the spawning thread's open span path
//! ([`slap_obs::span::inherit`]), so spans opened inside a worker — and
//! the trace-timeline events they record — nest under the phase that
//! forked them instead of appearing as orphaned roots.

use std::cell::Cell;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread::ScopedJoinHandle;

/// Process-wide thread count; 0 means "not resolved yet".
static THREADS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Set while the current thread runs inside a pool worker; nested
    /// primitives then execute inline instead of spawning.
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Resolves the thread count from the environment: `SLAP_THREADS` if it
/// parses to a positive integer, otherwise the machine's available
/// parallelism (1 if unknown).
fn resolve_default() -> usize {
    std::env::var("SLAP_THREADS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// The effective thread count used by the primitives in this crate.
///
/// Resolved lazily on first call (see the crate docs for the priority
/// order) and cached; [`set_threads`] overrides it at any time.
pub fn threads() -> usize {
    let t = THREADS.load(Ordering::Relaxed);
    if t != 0 {
        return t;
    }
    let resolved = resolve_default().max(1);
    // A racing first call computes the same value, so a plain store is fine.
    THREADS.store(resolved, Ordering::Relaxed);
    resolved
}

/// Overrides the thread count (clamped to at least 1). Intended for
/// `--threads` flags and tests; takes effect for all subsequent calls.
pub fn set_threads(n: usize) {
    THREADS.store(n.max(1), Ordering::Relaxed);
}

/// Clears any cached/overridden thread count so the next [`threads`] call
/// re-reads `SLAP_THREADS` / available parallelism. Mainly for tests.
pub fn reset_threads() {
    THREADS.store(0, Ordering::Relaxed);
}

/// True while the calling thread is a pool worker (primitives then run
/// inline; see the crate docs on nested parallelism).
pub fn in_worker() -> bool {
    IN_WORKER.with(Cell::get)
}

/// How many workers to use for `n` items: 1 inside a worker or when a
/// pool would not help, otherwise `threads()` capped by the item count.
fn workers_for(n: usize) -> usize {
    if n <= 1 || in_worker() {
        1
    } else {
        threads().min(n)
    }
}

/// Joins a worker, propagating its panic payload unchanged.
fn join_worker<T>(handle: ScopedJoinHandle<'_, T>) -> T {
    match handle.join() {
        Ok(v) => v,
        Err(payload) => std::panic::resume_unwind(payload),
    }
}

/// Splits `0..len` into at most `parts` contiguous, near-equal, in-order
/// ranges (fewer when `len < parts`; empty when `len == 0`).
pub fn split_ranges(len: usize, parts: usize) -> Vec<Range<usize>> {
    if len == 0 {
        return Vec::new();
    }
    let parts = parts.clamp(1, len);
    let base = len / parts;
    let rem = len % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for p in 0..parts {
        let size = base + usize::from(p < rem);
        out.push(start..start + size);
        start += size;
    }
    out
}

/// Maps `f` over `items` with per-worker state, returning the results in
/// item order plus every worker's final state (in worker-index order).
///
/// Work is claimed dynamically in contiguous chunks for load balance, but
/// the output vector is reassembled by chunk start offset, so the result
/// is identical for any thread count and any schedule — provided `f` is a
/// pure function of `(state, index, item)` and the per-worker states are
/// only used for commutative accumulation (stats, scratch buffers).
///
/// `init` receives the worker index; with one worker (or inside a nested
/// call) everything runs inline on the current thread.
pub fn par_map_with<T, R, S>(
    items: &[T],
    init: impl Fn(usize) -> S + Sync,
    f: impl Fn(&mut S, usize, &T) -> R + Sync,
) -> (Vec<R>, Vec<S>)
where
    T: Sync,
    R: Send,
    S: Send,
{
    let n = items.len();
    let nw = workers_for(n);
    if nw <= 1 {
        let mut state = init(0);
        let out = items
            .iter()
            .enumerate()
            .map(|(i, t)| f(&mut state, i, t))
            .collect();
        return (out, vec![state]);
    }
    // Chunked dynamic claiming: small enough for balance, large enough to
    // keep the shared cursor cold.
    let chunk = (n / (nw * 4)).max(1);
    let cursor = AtomicUsize::new(0);
    // Workers get fresh threads with empty span stacks; hand them the
    // spawning phase's path so their spans nest under it in traces.
    let trace_parent = slap_obs::span::current_path();
    let mut pieces: Vec<(usize, Vec<R>)> = Vec::new();
    let mut states: Vec<S> = Vec::with_capacity(nw);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..nw)
            .map(|w| {
                let cursor = &cursor;
                let init = &init;
                let f = &f;
                let trace_parent = trace_parent.as_deref();
                scope.spawn(move || {
                    let _trace_ctx = slap_obs::span::inherit(trace_parent);
                    IN_WORKER.with(|c| c.set(true));
                    let mut state = init(w);
                    let mut local: Vec<(usize, Vec<R>)> = Vec::new();
                    loop {
                        let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                        if start >= n {
                            break;
                        }
                        let end = (start + chunk).min(n);
                        let mut out = Vec::with_capacity(end - start);
                        for (i, t) in items[start..end].iter().enumerate() {
                            out.push(f(&mut state, start + i, t));
                        }
                        local.push((start, out));
                    }
                    IN_WORKER.with(|c| c.set(false));
                    (state, local)
                })
            })
            .collect();
        for handle in handles {
            let (state, local) = join_worker(handle);
            states.push(state);
            pieces.extend(local);
        }
    });
    pieces.sort_unstable_by_key(|&(start, _)| start);
    let mut out = Vec::with_capacity(n);
    for (_, mut piece) in pieces {
        out.append(&mut piece);
    }
    (out, states)
}

/// Maps `f` over `items` in parallel, returning results in item order.
/// See [`par_map_with`] for the determinism contract.
pub fn par_map<T, R>(items: &[T], f: impl Fn(usize, &T) -> R + Sync) -> Vec<R>
where
    T: Sync,
    R: Send,
{
    par_map_with(items, |_| (), |(), i, t| f(i, t)).0
}

/// Runs `f` over disjoint `chunk_size`-sized mutable chunks of `data`
/// (the last chunk may be shorter), returning the per-chunk results in
/// chunk order. Chunks are assigned to workers round-robin (static, so no
/// unsafe aliasing); each chunk index always denotes the same slice, so
/// the output — and the data mutations — are schedule-independent when
/// `f` is a pure function of `(chunk_index, chunk)`.
///
/// # Panics
///
/// Panics if `chunk_size` is 0.
pub fn par_chunks_mut<T, R>(
    data: &mut [T],
    chunk_size: usize,
    f: impl Fn(usize, &mut [T]) -> R + Sync,
) -> Vec<R>
where
    T: Send,
    R: Send,
{
    par_chunks_mut_with(data, chunk_size, |_| (), |(), i, c| f(i, c)).0
}

/// [`par_chunks_mut`] with per-worker state: `init` builds one state per
/// worker (receiving the worker index), every chunk processed by that
/// worker sees it as `&mut S`, and the final states are returned in
/// worker-index order. The state is for scratch buffers and commutative
/// accumulation only — chunk results must stay a pure function of
/// `(chunk_index, chunk)` for the determinism contract to hold.
///
/// # Panics
///
/// Panics if `chunk_size` is 0.
pub fn par_chunks_mut_with<T, R, S>(
    data: &mut [T],
    chunk_size: usize,
    init: impl Fn(usize) -> S + Sync,
    f: impl Fn(&mut S, usize, &mut [T]) -> R + Sync,
) -> (Vec<R>, Vec<S>)
where
    T: Send,
    R: Send,
    S: Send,
{
    assert!(chunk_size > 0, "chunk_size must be positive");
    let num_chunks = data.len().div_ceil(chunk_size);
    let nw = workers_for(num_chunks);
    if nw <= 1 {
        let mut state = init(0);
        let out = data
            .chunks_mut(chunk_size)
            .enumerate()
            .map(|(i, c)| f(&mut state, i, c))
            .collect();
        return (out, vec![state]);
    }
    let mut per_worker: Vec<Vec<(usize, &mut [T])>> = (0..nw).map(|_| Vec::new()).collect();
    for (i, c) in data.chunks_mut(chunk_size).enumerate() {
        per_worker[i % nw].push((i, c));
    }
    let trace_parent = slap_obs::span::current_path();
    let mut results: Vec<(usize, R)> = Vec::with_capacity(num_chunks);
    let mut states: Vec<S> = Vec::with_capacity(nw);
    std::thread::scope(|scope| {
        let handles: Vec<_> = per_worker
            .into_iter()
            .enumerate()
            .map(|(w, chunks)| {
                let init = &init;
                let f = &f;
                let trace_parent = trace_parent.as_deref();
                scope.spawn(move || {
                    let _trace_ctx = slap_obs::span::inherit(trace_parent);
                    IN_WORKER.with(|c| c.set(true));
                    let mut state = init(w);
                    let out: Vec<(usize, R)> = chunks
                        .into_iter()
                        .map(|(i, c)| (i, f(&mut state, i, c)))
                        .collect();
                    IN_WORKER.with(|c| c.set(false));
                    (state, out)
                })
            })
            .collect();
        for handle in handles {
            let (state, out) = join_worker(handle);
            states.push(state);
            results.extend(out);
        }
    });
    results.sort_unstable_by_key(|&(i, _)| i);
    (results.into_iter().map(|(_, r)| r).collect(), states)
}

/// Level-synchronized parallel map: each level's items run in parallel
/// (via [`par_map_with`]), with a barrier between levels; after each
/// level, `sink` folds that level's in-order results and worker states
/// into the shared context, which the next level's `f` reads immutably.
///
/// This is the shape of level-ordered cut enumeration: nodes on one
/// topological level are independent given the results of strictly lower
/// levels, so `f` gets `&C` (everything already sunk) and the
/// sequential `sink` is the only writer. Returns the final context.
pub fn par_levels<T, R, S, C>(
    levels: &[Vec<T>],
    mut ctx: C,
    init: impl Fn(usize) -> S + Sync,
    f: impl Fn(&C, &mut S, usize, &T) -> R + Sync,
    mut sink: impl FnMut(&mut C, usize, Vec<R>, Vec<S>),
) -> C
where
    T: Sync,
    R: Send,
    S: Send,
    C: Sync,
{
    for (li, level) in levels.iter().enumerate() {
        let (results, states) = par_map_with(level, &init, |s, i, t| f(&ctx, s, i, t));
        sink(&mut ctx, li, results, states);
    }
    ctx
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Serializes tests that mutate the process-wide thread count.
    static LOCK: Mutex<()> = Mutex::new(());

    fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
        let _guard = LOCK.lock().unwrap_or_else(|p| p.into_inner());
        let prev = threads();
        set_threads(n);
        let out = f();
        set_threads(prev);
        out
    }

    #[test]
    fn par_map_preserves_item_order() {
        for t in [1, 2, 3, 8] {
            let items: Vec<u64> = (0..103).collect();
            let out = with_threads(t, || par_map(&items, |i, &x| x * 2 + i as u64));
            let expected: Vec<u64> = (0..103).map(|x| x * 3).collect();
            assert_eq!(out, expected, "threads={t}");
        }
    }

    #[test]
    fn par_map_with_returns_one_state_per_worker() {
        let items: Vec<usize> = (0..40).collect();
        let (out, states) = with_threads(4, || {
            par_map_with(
                &items,
                |_w| 0u64,
                |count, _i, &x| {
                    *count += 1;
                    x + 1
                },
            )
        });
        assert_eq!(out, (1..=40).collect::<Vec<_>>());
        assert_eq!(states.len(), 4);
        // Every item was processed by exactly one worker.
        assert_eq!(states.iter().sum::<u64>(), 40);
    }

    #[test]
    fn empty_and_single_item_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(&empty, |_, &x| x).is_empty());
        assert_eq!(par_map(&[7u32], |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn nested_calls_run_inline() {
        let outer: Vec<usize> = (0..4).collect();
        let nested_was_inline = with_threads(4, || {
            par_map(&outer, |_, _| {
                assert!(in_worker());
                // A nested call must not spawn: its single worker state
                // proves it ran inline.
                let (_, states) = par_map_with(&[1, 2, 3], |_| (), |(), _, &x| x);
                states.len() == 1
            })
        });
        assert!(nested_was_inline.iter().all(|&b| b));
        assert!(!in_worker());
    }

    #[test]
    fn par_chunks_mut_mutates_every_chunk_once() {
        for t in [1, 3, 8] {
            let mut data = vec![0u32; 25];
            let lens = with_threads(t, || {
                par_chunks_mut(&mut data, 4, |i, chunk| {
                    for v in chunk.iter_mut() {
                        *v = i as u32 + 1;
                    }
                    chunk.len()
                })
            });
            assert_eq!(lens, vec![4, 4, 4, 4, 4, 4, 1], "threads={t}");
            assert_eq!(data[0], 1);
            assert_eq!(data[24], 7);
            assert!(data.iter().all(|&v| v != 0));
        }
    }

    #[test]
    fn par_chunks_mut_with_keeps_state_per_worker() {
        for t in [1, 3, 8] {
            let mut data = vec![0u32; 23];
            let (firsts, states) = with_threads(t, || {
                par_chunks_mut_with(
                    &mut data,
                    4,
                    |_w| 0usize,
                    |seen, i, chunk| {
                        *seen += 1;
                        for v in chunk.iter_mut() {
                            *v = i as u32 + 1;
                        }
                        chunk[0]
                    },
                )
            });
            // Results in chunk order regardless of schedule.
            assert_eq!(firsts, vec![1, 2, 3, 4, 5, 6], "threads={t}");
            assert_eq!(data[22], 6, "threads={t}");
            // Every chunk touched exactly one worker state.
            assert_eq!(states.iter().sum::<usize>(), 6, "threads={t}");
            assert_eq!(states.len(), t.min(6), "threads={t}");
        }
    }

    #[test]
    fn split_ranges_covers_exactly() {
        assert!(split_ranges(0, 4).is_empty());
        for (len, parts) in [(10, 3), (3, 10), (16, 4), (1, 1)] {
            let ranges = split_ranges(len, parts);
            assert!(ranges.len() <= parts);
            let mut next = 0;
            for r in &ranges {
                assert_eq!(r.start, next);
                assert!(!r.is_empty());
                next = r.end;
            }
            assert_eq!(next, len);
        }
    }

    #[test]
    fn par_levels_sinks_in_level_order() {
        let levels: Vec<Vec<u32>> = vec![vec![1, 2], vec![3], vec![4, 5, 6]];
        // ctx accumulates the running sum of everything sunk so far; each
        // item adds the ctx sum it observed, proving levels are barriers.
        let sums = with_threads(4, || {
            par_levels(
                &levels,
                (0u32, Vec::new()),
                |_w| (),
                |ctx, (), _i, &x| x + ctx.0,
                |ctx, _li, results, _states| {
                    ctx.0 += results.iter().sum::<u32>();
                    ctx.1.push(results);
                },
            )
        });
        assert_eq!(sums.1[0], vec![1, 2]);
        assert_eq!(sums.1[1], vec![3 + 3]);
        assert_eq!(sums.1[2], vec![4 + 9, 5 + 9, 6 + 9]);
    }

    #[test]
    fn results_identical_across_thread_counts() {
        let items: Vec<u64> = (0..517).map(|i| i * 31 % 97).collect();
        let baseline = with_threads(1, || par_map(&items, |i, &x| x.wrapping_mul(i as u64 + 1)));
        for t in [2, 5, 8] {
            let out = with_threads(t, || par_map(&items, |i, &x| x.wrapping_mul(i as u64 + 1)));
            assert_eq!(out, baseline, "threads={t}");
        }
    }

    #[test]
    fn set_and_reset_threads() {
        let _guard = LOCK.lock().unwrap_or_else(|p| p.into_inner());
        set_threads(3);
        assert_eq!(threads(), 3);
        set_threads(0); // clamped
        assert_eq!(threads(), 1);
        reset_threads();
        assert!(threads() >= 1); // re-resolved from the environment
    }

    #[test]
    fn worker_spans_nest_under_the_forking_phase() {
        // Workers inherit the spawning thread's span path; their trace
        // events must parent under it, not appear as orphaned roots.
        let events = with_threads(4, || {
            slap_obs::trace::set_enabled(true);
            slap_obs::trace::drain();
            {
                let _phase = slap_obs::span("par_test_fork_phase");
                let items: Vec<u32> = (0..16).collect();
                let out = par_map(&items, |_, &x| {
                    let _s = slap_obs::span("par_test_work");
                    x + 1
                });
                assert_eq!(out, (1..=16).collect::<Vec<_>>());
            }
            slap_obs::trace::set_enabled(false);
            slap_obs::trace::drain()
        });
        let work: Vec<_> = events
            .iter()
            .filter(|e| e.path.ends_with("par_test_work"))
            .collect();
        assert_eq!(work.len(), 16, "one event per item");
        for e in &work {
            assert_eq!(e.path, "par_test_fork_phase/par_test_work");
            assert_eq!(e.parent(), Some("par_test_fork_phase"));
        }
    }

    #[test]
    fn worker_panic_propagates() {
        let result = std::panic::catch_unwind(|| {
            with_threads(2, || {
                par_map(&[1u32, 2, 3, 4], |_, &x| {
                    assert!(x != 3, "boom");
                    x
                })
            })
        });
        assert!(result.is_err());
    }
}
