//! The named benchmark catalogue: the paper's Table II set and the two
//! training adders of §V-A.

use slap_aig::Aig;

use crate::aes::{aes_core, aes_mini};
use crate::arith::{
    array_multiplier, barrel_shifter, booth_multiplier, carry_lookahead_adder, max4,
    ripple_carry_adder, sin_poly, squarer,
};
use crate::iscas::{c6288_like, c7552_like};
use crate::riscv::rv32_datapath;

/// How large to build the benchmark set.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Paper-faithful operand widths (slow on a laptop for the 64-bit
    /// multipliers and the AES core, but exercises everything).
    Full,
    /// Reduced widths with identical structure, sized so the whole
    /// Table II harness finishes in minutes on one core.
    Quick,
}

/// A named benchmark circuit.
pub struct Benchmark {
    /// The paper's circuit name (Table II row).
    pub name: &'static str,
    builder: fn(Scale) -> Aig,
}

impl Benchmark {
    /// Builds the circuit at the requested scale.
    pub fn build(&self, scale: Scale) -> Aig {
        (self.builder)(scale)
    }
}

impl std::fmt::Debug for Benchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Benchmark({})", self.name)
    }
}

/// The 14 Table II benchmarks, in the paper's row order.
pub fn table2_benchmarks() -> Vec<Benchmark> {
    vec![
        Benchmark {
            name: "adder",
            builder: |s| carry_lookahead_adder(pick(s, 128, 64)),
        },
        Benchmark {
            name: "bar",
            builder: |s| barrel_shifter(pick(s, 128, 64)),
        },
        Benchmark {
            name: "c6288",
            builder: |_| c6288_like(),
        },
        Benchmark {
            name: "max",
            builder: |s| max4(pick(s, 128, 64)),
        },
        Benchmark {
            name: "rc256b",
            builder: |s| ripple_carry_adder(pick(s, 256, 128)),
        },
        Benchmark {
            name: "rc64b",
            builder: |_| ripple_carry_adder(64),
        },
        Benchmark {
            name: "sin",
            builder: |s| sin_poly(pick(s, 16, 12)),
        },
        Benchmark {
            name: "c7552",
            builder: |_| c7552_like(),
        },
        Benchmark {
            name: "mul32-booth",
            builder: |s| booth_multiplier(pick(s, 32, 16)),
        },
        Benchmark {
            name: "mul64-booth",
            builder: |s| booth_multiplier(pick(s, 64, 32)),
        },
        Benchmark {
            name: "square",
            builder: |s| squarer(pick(s, 64, 32)),
        },
        Benchmark {
            name: "AES",
            builder: |s| {
                if s == Scale::Full {
                    aes_core(1)
                } else {
                    aes_mini()
                }
            },
        },
        Benchmark {
            name: "64b_mult",
            builder: |s| {
                let w = pick(s, 64, 24);
                array_multiplier(w, w)
            },
        },
        Benchmark {
            name: "Pico RISCV",
            builder: |_| rv32_datapath(),
        },
    ]
}

/// The two 16-bit adder architectures used to generate training data
/// (§V-A): a ripple-carry and a carry-lookahead adder.
pub fn training_benchmarks() -> Vec<Benchmark> {
    vec![
        Benchmark {
            name: "rc16",
            builder: |_| ripple_carry_adder(16),
        },
        Benchmark {
            name: "cla16",
            builder: |_| carry_lookahead_adder(16),
        },
    ]
}

fn pick(scale: Scale, full: usize, quick: usize) -> usize {
    match scale {
        Scale::Full => full,
        Scale::Quick => quick,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fourteen_benchmarks_in_paper_order() {
        let b = table2_benchmarks();
        assert_eq!(b.len(), 14);
        assert_eq!(b[0].name, "adder");
        assert_eq!(b[13].name, "Pico RISCV");
    }

    #[test]
    fn quick_scale_builds_everything_nontrivially() {
        for bench in table2_benchmarks() {
            let aig = bench.build(Scale::Quick);
            assert!(
                aig.num_ands() > 100,
                "{} too small: {}",
                bench.name,
                aig.num_ands()
            );
            assert!(aig.num_pos() > 0, "{} has no outputs", bench.name);
        }
    }

    #[test]
    fn training_benchmarks_are_16_bit_adders() {
        let t = training_benchmarks();
        assert_eq!(t.len(), 2);
        for bench in &t {
            let aig = bench.build(Scale::Full);
            assert_eq!(aig.num_pis(), 32);
            assert_eq!(aig.num_pos(), 17);
        }
    }

    #[test]
    fn quick_is_no_larger_than_full() {
        for bench in table2_benchmarks() {
            let q = bench.build(Scale::Quick).num_ands();
            let f = bench.build(Scale::Full).num_ands();
            assert!(q <= f, "{}: quick {} > full {}", bench.name, q, f);
        }
    }
}
