//! ISCAS'85-style circuits: c6288 and c7552 functional equivalents.

use slap_aig::{Aig, Lit};

use crate::arith::array_multiply;
use crate::words::{input_word, output_word, ripple_add, ripple_sub, unsigned_ge};

/// c6288-style 16×16 unsigned array multiplier (the ISCAS'85 c6288 is a
/// 16×16 multiplier built from an adder array; this regenerates the same
/// function with the same array structure).
pub fn c6288_like() -> Aig {
    let mut aig = Aig::new();
    aig.set_name("c6288");
    let a = input_word(&mut aig, 16);
    let b = input_word(&mut aig, 16);
    let p = array_multiply(&mut aig, &a, &b);
    output_word(&mut aig, &p);
    aig
}

/// c7552-style 32-bit adder/comparator (the documented function of
/// ISCAS'85 c7552: a 34-bit adder slice with magnitude comparison and
/// parity checking). Outputs: 32-bit sum, carry, `a >= b`, `a == b`,
/// and the parity of the sum.
pub fn c7552_like() -> Aig {
    let mut aig = Aig::new();
    aig.set_name("c7552");
    let a = input_word(&mut aig, 32);
    let b = input_word(&mut aig, 32);
    let cin = aig.add_pi();
    let (sum, cout) = ripple_add(&mut aig, &a, &b, cin);
    output_word(&mut aig, &sum);
    aig.add_po(cout);
    let ge = unsigned_ge(&mut aig, &a, &b);
    aig.add_po(ge);
    // Equality: the subtraction result is zero.
    let (diff, _) = ripple_sub(&mut aig, &a, &b);
    let any = aig.or_all(diff.iter().copied());
    aig.add_po(!any);
    let parity = aig.xor_all(sum.iter().copied());
    aig.add_po(parity);
    let _ = Lit::FALSE;
    aig
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::words::{bits_to_u64, u64_to_bits};
    use slap_aig::sim::simulate_bits;
    use slap_aig::Rng64;

    #[test]
    fn c6288_multiplies() {
        let aig = c6288_like();
        let mut rng = Rng64::seed_from(7);
        for _ in 0..10 {
            let x = rng.below(1 << 16);
            let y = rng.below(1 << 16);
            let mut ins = u64_to_bits(x, 16);
            ins.extend(u64_to_bits(y, 16));
            let out = simulate_bits(&aig, &ins);
            assert_eq!(bits_to_u64(&out), x * y);
        }
    }

    #[test]
    fn c7552_add_compare_parity() {
        let aig = c7552_like();
        let mut rng = Rng64::seed_from(8);
        for round in 0..20 {
            let x = rng.next_u64() & 0xFFFF_FFFF;
            let y = if round % 5 == 0 {
                x
            } else {
                rng.next_u64() & 0xFFFF_FFFF
            };
            let cin = rng.bool();
            let mut ins = u64_to_bits(x, 32);
            ins.extend(u64_to_bits(y, 32));
            ins.push(cin);
            let out = simulate_bits(&aig, &ins);
            let full = x + y + cin as u64;
            assert_eq!(bits_to_u64(&out[..32]), full & 0xFFFF_FFFF);
            assert_eq!(out[32], full >> 32 != 0, "carry");
            assert_eq!(out[33], x >= y, "ge");
            assert_eq!(out[34], x == y, "eq");
            assert_eq!(
                out[35],
                (full & 0xFFFF_FFFF).count_ones() % 2 == 1,
                "parity"
            );
        }
    }

    #[test]
    fn c6288_size_is_multiplier_like() {
        let aig = c6288_like();
        // ISCAS c6288 has ~2400 gates; the regenerated array lands in the
        // same order of magnitude.
        assert!(
            aig.num_ands() > 1500 && aig.num_ands() < 8000,
            "{}",
            aig.num_ands()
        );
    }
}
