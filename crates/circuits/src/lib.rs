//! Benchmark circuit generators for the SLAP reproduction.
//!
//! The paper evaluates on 14 arithmetic-heavy designs drawn from the
//! ISCAS'85 and EPFL suites plus ABC's `gen` ripple-carry adders, an AES
//! core, and a PicoRV32 RISC-V core. The original benchmark files are
//! external artifacts, so this crate regenerates functionally equivalent
//! circuits from scratch (each verified in tests against a software
//! reference model):
//!
//! * [`arith`] — adders (ripple-carry, carry-lookahead), barrel shifter,
//!   4-way max, array/Booth multipliers, squarer, fixed-point sine;
//! * [`iscas`] — c6288-style 16×16 multiplier and c7552-style
//!   adder/comparator;
//! * [`aes`] — AES-128 round datapath with Itoh–Tsujii GF(2⁸) inversion
//!   S-boxes;
//! * [`riscv`] — a PicoRV32-flavoured single-cycle RV32I datapath slice;
//! * [`catalog`] — the named Table II benchmark set.
//!
//! # Example
//!
//! ```
//! use slap_circuits::arith::ripple_carry_adder;
//! use slap_aig::sim::simulate_bits;
//!
//! let aig = ripple_carry_adder(8);
//! // 8-bit 3 + 5 = 8.
//! let mut ins = vec![false; 16];
//! ins[0] = true; ins[1] = true;          // a = 3
//! ins[8] = true; ins[10] = true;         // b = 5
//! let out = simulate_bits(&aig, &ins);
//! let sum: u32 = out.iter().enumerate().map(|(i, &b)| (b as u32) << i).sum();
//! assert_eq!(sum, 8);
//! ```

pub mod aes;
pub mod arith;
pub mod catalog;
pub mod iscas;
pub mod riscv;
pub mod words;

pub use catalog::{table2_benchmarks, training_benchmarks, Benchmark, Scale};
