//! AES-128 core generator with gate-level GF(2⁸) S-boxes.
//!
//! The S-box computes the multiplicative inverse with an Itoh–Tsujii
//! addition chain (x²⁵⁴ via four GF multiplications and seven squarings,
//! all as Boolean circuits over the AES polynomial x⁸+x⁴+x³+x+1) followed
//! by the FIPS-197 affine transform. A software model ([`model`]) mirrors
//! every step bit-exactly and is checked against the FIPS-197 test vector.

use slap_aig::{Aig, Lit};

use crate::words::{input_word, output_word};

/// A byte in the circuit: 8 literals, LSB first.
pub type ByteW = [Lit; 8];

/// GF(2⁸) carry-less multiplication followed by reduction modulo the AES
/// polynomial.
pub fn gf_mul(aig: &mut Aig, a: &ByteW, b: &ByteW) -> ByteW {
    // Polynomial product coefficients c_0..c_14.
    let mut coeff: Vec<Vec<Lit>> = vec![Vec::new(); 15];
    for (i, &ai) in a.iter().enumerate() {
        for (j, &bj) in b.iter().enumerate() {
            let p = aig.and(ai, bj);
            coeff[i + j].push(p);
        }
    }
    let mut c: Vec<Lit> = coeff.into_iter().map(|terms| aig.xor_all(terms)).collect();
    reduce_poly(aig, &mut c);
    to_byte(&c)
}

/// GF(2⁸) squaring (linear: spread bits to even positions, then reduce).
pub fn gf_sq(aig: &mut Aig, a: &ByteW) -> ByteW {
    let mut c = vec![Lit::FALSE; 15];
    for (i, &ai) in a.iter().enumerate() {
        c[2 * i] = ai;
    }
    reduce_poly(aig, &mut c);
    to_byte(&c)
}

/// Reduces a 15-coefficient polynomial modulo x⁸+x⁴+x³+x+1 in place
/// (high coefficients fold into positions −8, −7, −5, −4 relative offsets
/// +0, +1, +3, +4).
fn reduce_poly(aig: &mut Aig, c: &mut Vec<Lit>) {
    for k in (8..c.len()).rev() {
        let hi = c[k];
        c[k] = Lit::FALSE;
        for off in [0usize, 1, 3, 4] {
            let idx = k - 8 + off;
            c[idx] = aig.xor(c[idx], hi);
        }
    }
    c.truncate(8);
}

fn to_byte(c: &[Lit]) -> ByteW {
    let mut b = [Lit::FALSE; 8];
    b.copy_from_slice(&c[..8]);
    b
}

/// GF(2⁸) inversion via the addition chain
/// x → x² → x³ → x⁶ → x⁷ → x¹⁴ → x¹⁵ → x²⁴⁰ → x²⁵⁴ (0⁻¹ := 0, as AES
/// requires).
pub fn gf_inv(aig: &mut Aig, x: &ByteW) -> ByteW {
    let t1 = gf_sq(aig, x); // x^2
    let t2 = gf_mul(aig, &t1, x); // x^3
    let t3 = gf_sq(aig, &t2); // x^6
    let t4 = gf_mul(aig, &t3, x); // x^7
    let t5 = gf_sq(aig, &t4); // x^14
    let t6 = gf_mul(aig, &t5, x); // x^15
    let mut t7 = t6;
    for _ in 0..4 {
        t7 = gf_sq(aig, &t7); // x^240
    }
    gf_mul(aig, &t7, &t5) // x^254
}

/// The AES S-box: inversion followed by the FIPS-197 affine transform
/// `b'ᵢ = bᵢ ⊕ b₍ᵢ₊₄₎ ⊕ b₍ᵢ₊₅₎ ⊕ b₍ᵢ₊₆₎ ⊕ b₍ᵢ₊₇₎ ⊕ cᵢ` with c = 0x63.
pub fn sbox(aig: &mut Aig, x: &ByteW) -> ByteW {
    let inv = gf_inv(aig, x);
    let mut out = [Lit::FALSE; 8];
    for i in 0..8 {
        let t = aig.xor(inv[i], inv[(i + 4) % 8]);
        let t = aig.xor(t, inv[(i + 5) % 8]);
        let t = aig.xor(t, inv[(i + 6) % 8]);
        let mut t = aig.xor(t, inv[(i + 7) % 8]);
        if (0x63 >> i) & 1 != 0 {
            t = !t;
        }
        out[i] = t;
    }
    out
}

fn xor_byte(aig: &mut Aig, a: &ByteW, b: &ByteW) -> ByteW {
    let mut out = [Lit::FALSE; 8];
    for i in 0..8 {
        out[i] = aig.xor(a[i], b[i]);
    }
    out
}

/// xtime: multiplication by 2 in GF(2⁸) (shift + conditional reduction).
fn xtime(aig: &mut Aig, a: &ByteW) -> ByteW {
    let msb = a[7];
    let mut out = [Lit::FALSE; 8];
    for i in (1..8).rev() {
        out[i] = a[i - 1];
    }
    out[0] = Lit::FALSE;
    for i in [0usize, 1, 3, 4] {
        out[i] = aig.xor(out[i], msb);
    }
    out
}

/// One AES-128 encryption datapath with `rounds` rounds and on-the-fly
/// key schedule. Inputs: 128-bit plaintext then the 128-bit cipher key
/// (byte 0 first, each byte LSB-first). Output: the 128-bit state after
/// the final round. With `rounds == 10` this is exactly FIPS-197 AES-128
/// encryption (the last round skips MixColumns).
///
/// # Panics
///
/// Panics if `rounds == 0`.
pub fn aes_core(rounds: usize) -> Aig {
    assert!(rounds > 0, "at least one round required");
    let mut aig = Aig::new();
    aig.set_name(if rounds == 10 {
        "aes128".to_string()
    } else {
        format!("aes128-r{rounds}")
    });
    let pt = input_word(&mut aig, 128);
    let key = input_word(&mut aig, 128);
    let byte = |w: &[Lit], i: usize| -> ByteW {
        let mut b = [Lit::FALSE; 8];
        b.copy_from_slice(&w[i * 8..i * 8 + 8]);
        b
    };
    // State and key as 16 bytes in FIPS input order (byte i = column-major
    // state[i%4][i/4]).
    let mut state: Vec<ByteW> = (0..16).map(|i| byte(&pt, i)).collect();
    let mut round_key: Vec<ByteW> = (0..16).map(|i| byte(&key, i)).collect();
    // Initial AddRoundKey.
    for i in 0..16 {
        state[i] = xor_byte(&mut aig, &state[i], &round_key[i]);
    }
    let mut rcon: u8 = 0x01;
    for r in 1..=rounds {
        // Key schedule: derive round key r from round key r-1.
        round_key = next_round_key(&mut aig, &round_key, rcon);
        rcon = model::xtime_u8(rcon);
        // SubBytes.
        for b in state.iter_mut() {
            *b = sbox(&mut aig, b);
        }
        // ShiftRows: byte at (row, col) moves from (row, col+row).
        let mut shifted = state.clone();
        for row in 1..4 {
            for col in 0..4 {
                shifted[row + 4 * col] = state[row + 4 * ((col + row) % 4)];
            }
        }
        state = shifted;
        // MixColumns, skipped in the final round.
        if r != rounds {
            for col in 0..4 {
                let s: Vec<ByteW> = (0..4).map(|row| state[row + 4 * col]).collect();
                for row in 0..4 {
                    let a0 = &s[row];
                    let a1 = &s[(row + 1) % 4];
                    let a2 = &s[(row + 2) % 4];
                    let a3 = &s[(row + 3) % 4];
                    let d0 = xtime(&mut aig, a0); // 2·a0
                    let d1 = xtime(&mut aig, a1);
                    let t1 = xor_byte(&mut aig, &d1, a1); // 3·a1
                    let acc = xor_byte(&mut aig, &d0, &t1);
                    let acc = xor_byte(&mut aig, &acc, a2);
                    let acc = xor_byte(&mut aig, &acc, a3);
                    state[row + 4 * col] = acc;
                }
            }
        }
        // AddRoundKey.
        for i in 0..16 {
            state[i] = xor_byte(&mut aig, &state[i], &round_key[i]);
        }
    }
    for b in &state {
        output_word(&mut aig, b);
    }
    aig
}

/// A reduced-width AES-like round on a 32-bit state (4 S-boxes, one
/// MixColumns column, 32-bit key) — the fast stand-in used for the Fig. 1
/// design-space sweep, where thousands of mappings of the full core would
/// be needlessly slow.
pub fn aes_mini() -> Aig {
    let mut aig = Aig::new();
    aig.set_name("aes-mini");
    let pt = input_word(&mut aig, 32);
    let key = input_word(&mut aig, 32);
    let byte = |w: &[Lit], i: usize| -> ByteW {
        let mut b = [Lit::FALSE; 8];
        b.copy_from_slice(&w[i * 8..i * 8 + 8]);
        b
    };
    let mut state: Vec<ByteW> = (0..4).map(|i| byte(&pt, i)).collect();
    let keyb: Vec<ByteW> = (0..4).map(|i| byte(&key, i)).collect();
    for i in 0..4 {
        state[i] = xor_byte(&mut aig, &state[i], &keyb[i]);
        state[i] = sbox(&mut aig, &state[i]);
    }
    // One MixColumns column.
    let s = state.clone();
    for row in 0..4 {
        let d0 = xtime(&mut aig, &s[row]);
        let d1 = xtime(&mut aig, &s[(row + 1) % 4]);
        let t1 = xor_byte(&mut aig, &d1, &s[(row + 1) % 4]);
        let acc = xor_byte(&mut aig, &d0, &t1);
        let acc = xor_byte(&mut aig, &acc, &s[(row + 2) % 4]);
        let acc = xor_byte(&mut aig, &acc, &s[(row + 3) % 4]);
        state[row] = xor_byte(&mut aig, &acc, &keyb[row]);
    }
    for b in &state {
        output_word(&mut aig, b);
    }
    aig
}

/// One key-schedule step: 4 S-boxes on the rotated last word plus Rcon.
fn next_round_key(aig: &mut Aig, prev: &[ByteW], rcon: u8) -> Vec<ByteW> {
    // prev[4*w + b] = byte b of word w.
    let mut out: Vec<ByteW> = Vec::with_capacity(16);
    // temp = SubWord(RotWord(w3)) ^ Rcon.
    let w3 = &prev[12..16];
    let mut temp: Vec<ByteW> = (0..4).map(|b| w3[(b + 1) % 4]).collect();
    for t in temp.iter_mut() {
        *t = sbox(aig, t);
    }
    for (i, t) in temp[0].iter_mut().enumerate() {
        if (rcon >> i) & 1 != 0 {
            *t = !*t;
        }
    }
    for w in 0..4 {
        for b in 0..4 {
            let prev_word_byte = prev[4 * w + b];
            let xor_with = if w == 0 {
                temp[b]
            } else {
                out[4 * (w - 1) + b]
            };
            out.push([Lit::FALSE; 8]);
            let idx = out.len() - 1;
            out[idx] = xor_byte(aig, &prev_word_byte, &xor_with);
        }
    }
    out
}

/// Bit-exact software model of the circuit generators above.
pub mod model {
    /// GF(2⁸) multiply-by-2 modulo the AES polynomial.
    pub fn xtime_u8(a: u8) -> u8 {
        let hi = a & 0x80 != 0;
        let mut r = a << 1;
        if hi {
            r ^= 0x1B;
        }
        r
    }

    /// GF(2⁸) multiplication.
    pub fn gf_mul_u8(mut a: u8, mut b: u8) -> u8 {
        let mut r = 0u8;
        for _ in 0..8 {
            if b & 1 != 0 {
                r ^= a;
            }
            a = xtime_u8(a);
            b >>= 1;
        }
        r
    }

    /// GF(2⁸) inversion (0 maps to 0).
    pub fn gf_inv_u8(a: u8) -> u8 {
        if a == 0 {
            return 0;
        }
        // x^254 by square-and-multiply.
        let mut result = 1u8;
        let mut base = a;
        let mut e = 254u32;
        while e > 0 {
            if e & 1 != 0 {
                result = gf_mul_u8(result, base);
            }
            base = gf_mul_u8(base, base);
            e >>= 1;
        }
        result
    }

    /// The AES S-box.
    pub fn sbox_u8(a: u8) -> u8 {
        let b = gf_inv_u8(a);
        let mut out = 0u8;
        for i in 0..8 {
            let bit = ((b >> i)
                ^ (b >> ((i + 4) % 8))
                ^ (b >> ((i + 5) % 8))
                ^ (b >> ((i + 6) % 8))
                ^ (b >> ((i + 7) % 8))
                ^ (0x63 >> i))
                & 1;
            out |= bit << i;
        }
        out
    }

    /// AES-128 encryption truncated to `rounds` rounds, mirroring
    /// [`super::aes_core`] exactly.
    pub fn encrypt(pt: [u8; 16], key: [u8; 16], rounds: usize) -> [u8; 16] {
        let mut state = pt;
        let mut rk = key;
        for (s, k) in state.iter_mut().zip(rk.iter()) {
            *s ^= k;
        }
        let mut rcon = 0x01u8;
        for r in 1..=rounds {
            rk = next_round_key(rk, rcon);
            rcon = xtime_u8(rcon);
            for s in state.iter_mut() {
                *s = sbox_u8(*s);
            }
            // ShiftRows.
            let mut shifted = state;
            for row in 1..4 {
                for col in 0..4 {
                    shifted[row + 4 * col] = state[row + 4 * ((col + row) % 4)];
                }
            }
            state = shifted;
            if r != rounds {
                for col in 0..4 {
                    let s: Vec<u8> = (0..4).map(|row| state[row + 4 * col]).collect();
                    for row in 0..4 {
                        state[row + 4 * col] = gf_mul_u8(2, s[row])
                            ^ gf_mul_u8(3, s[(row + 1) % 4])
                            ^ s[(row + 2) % 4]
                            ^ s[(row + 3) % 4];
                    }
                }
            }
            for (s, k) in state.iter_mut().zip(rk.iter()) {
                *s ^= k;
            }
        }
        state
    }

    fn next_round_key(prev: [u8; 16], rcon: u8) -> [u8; 16] {
        let mut temp = [prev[13], prev[14], prev[15], prev[12]];
        for t in temp.iter_mut() {
            *t = sbox_u8(*t);
        }
        temp[0] ^= rcon;
        let mut out = [0u8; 16];
        for w in 0..4 {
            for b in 0..4 {
                let x = if w == 0 {
                    temp[b]
                } else {
                    out[4 * (w - 1) + b]
                };
                out[4 * w + b] = prev[4 * w + b] ^ x;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::words::{bits_to_u64, u64_to_bits};
    use slap_aig::sim::simulate_bits;
    use slap_aig::Rng64;

    #[test]
    fn model_sbox_matches_fips_table_spots() {
        // Known S-box values from FIPS-197.
        assert_eq!(model::sbox_u8(0x00), 0x63);
        assert_eq!(model::sbox_u8(0x01), 0x7C);
        assert_eq!(model::sbox_u8(0x53), 0xED);
        assert_eq!(model::sbox_u8(0xFF), 0x16);
    }

    #[test]
    fn circuit_sbox_matches_model() {
        let mut aig = Aig::new();
        let x = input_word(&mut aig, 8);
        let mut xb = [Lit::FALSE; 8];
        xb.copy_from_slice(&x);
        let y = sbox(&mut aig, &xb);
        output_word(&mut aig, &y);
        for v in [0u64, 1, 0x53, 0x7F, 0x80, 0xC2, 0xFF] {
            let out = simulate_bits(&aig, &u64_to_bits(v, 8));
            assert_eq!(
                bits_to_u64(&out) as u8,
                model::sbox_u8(v as u8),
                "sbox({v:#x})"
            );
        }
    }

    #[test]
    fn gf_mul_circuit_matches_model() {
        let mut aig = Aig::new();
        let a = input_word(&mut aig, 8);
        let b = input_word(&mut aig, 8);
        let mut ab = [Lit::FALSE; 8];
        ab.copy_from_slice(&a);
        let mut bb = [Lit::FALSE; 8];
        bb.copy_from_slice(&b);
        let p = gf_mul(&mut aig, &ab, &bb);
        output_word(&mut aig, &p);
        let mut rng = Rng64::seed_from(9);
        for _ in 0..30 {
            let x = rng.below(256) as u8;
            let y = rng.below(256) as u8;
            let mut ins = u64_to_bits(x as u64, 8);
            ins.extend(u64_to_bits(y as u64, 8));
            let out = simulate_bits(&aig, &ins);
            assert_eq!(
                bits_to_u64(&out) as u8,
                model::gf_mul_u8(x, y),
                "{x:#x}*{y:#x}"
            );
        }
    }

    #[test]
    fn full_aes_matches_fips_vector() {
        // FIPS-197 appendix B: key 2b7e..., pt 3243..., ct 3925841d02dc09fbdc118597196a0b32.
        let key: [u8; 16] = [
            0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
            0x4f, 0x3c,
        ];
        let pt: [u8; 16] = [
            0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d, 0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37,
            0x07, 0x34,
        ];
        let expect: [u8; 16] = [
            0x39, 0x25, 0x84, 0x1d, 0x02, 0xdc, 0x09, 0xfb, 0xdc, 0x11, 0x85, 0x97, 0x19, 0x6a,
            0x0b, 0x32,
        ];
        assert_eq!(
            model::encrypt(pt, key, 10),
            expect,
            "software model vs FIPS vector"
        );
    }

    #[test]
    fn aes_core_circuit_matches_model_two_rounds() {
        let aig = aes_core(2);
        let mut rng = Rng64::seed_from(10);
        let mut pt = [0u8; 16];
        let mut key = [0u8; 16];
        for b in pt.iter_mut() {
            *b = rng.below(256) as u8;
        }
        for b in key.iter_mut() {
            *b = rng.below(256) as u8;
        }
        let mut ins = Vec::new();
        for &b in &pt {
            ins.extend(u64_to_bits(b as u64, 8));
        }
        for &b in &key {
            ins.extend(u64_to_bits(b as u64, 8));
        }
        let out = simulate_bits(&aig, &ins);
        let expect = model::encrypt(pt, key, 2);
        for i in 0..16 {
            let got = bits_to_u64(&out[i * 8..(i + 1) * 8]) as u8;
            assert_eq!(got, expect[i], "byte {i}");
        }
    }

    #[test]
    fn aes_mini_is_compact_and_nontrivial() {
        let aig = aes_mini();
        assert_eq!(aig.num_pis(), 64);
        assert_eq!(aig.num_pos(), 32);
        assert!(aig.num_ands() > 2000, "{}", aig.num_ands());
        assert!(aig.num_ands() < 20000, "{}", aig.num_ands());
    }
}
