//! Arithmetic benchmark generators (EPFL-style and ABC `gen`-style).

use slap_aig::{Aig, Lit};

use crate::words::{
    const_word, input_word, mux_word, output_word, ripple_add, ripple_sub, unsigned_ge,
};

/// `n`-bit ripple-carry adder (ABC's `gen -a`): inputs `a`, `b`, outputs
/// `sum` plus carry-out.
pub fn ripple_carry_adder(n: usize) -> Aig {
    let mut aig = Aig::new();
    aig.set_name(format!("rc{n}b"));
    let a = input_word(&mut aig, n);
    let b = input_word(&mut aig, n);
    let (sum, cout) = ripple_add(&mut aig, &a, &b, Lit::FALSE);
    output_word(&mut aig, &sum);
    aig.add_po(cout);
    aig
}

/// `n`-bit carry-lookahead adder built from 4-bit lookahead groups with
/// rippled group carries — the EPFL `adder`-style shallow adder.
///
/// # Panics
///
/// Panics if `n` is not a positive multiple of 4.
pub fn carry_lookahead_adder(n: usize) -> Aig {
    assert!(
        n > 0 && n.is_multiple_of(4),
        "width must be a positive multiple of 4"
    );
    let mut aig = Aig::new();
    aig.set_name(format!("cla{n}"));
    let a = input_word(&mut aig, n);
    let b = input_word(&mut aig, n);
    let mut sum = Vec::with_capacity(n);
    let mut carry = Lit::FALSE;
    for group in 0..(n / 4) {
        let base = group * 4;
        // Per-bit propagate/generate.
        let mut p = [Lit::FALSE; 4];
        let mut g = [Lit::FALSE; 4];
        for i in 0..4 {
            p[i] = aig.xor(a[base + i], b[base + i]);
            g[i] = aig.and(a[base + i], b[base + i]);
        }
        // Lookahead carries within the group.
        let mut c = [Lit::FALSE; 5];
        c[0] = carry;
        for i in 0..4 {
            // c[i+1] = g[i] | p[i] & c[i], fully expanded each step keeps
            // the carry chain shallow inside the group.
            let t = aig.and(p[i], c[i]);
            c[i + 1] = aig.or(g[i], t);
        }
        for i in 0..4 {
            sum.push(aig.xor(p[i], c[i]));
        }
        carry = c[4];
    }
    output_word(&mut aig, &sum);
    aig.add_po(carry);
    aig
}

/// `width`-bit barrel shifter (EPFL `bar`-style): rotates the data word
/// left by the shift amount.
///
/// # Panics
///
/// Panics if `width` is not a power of two.
pub fn barrel_shifter(width: usize) -> Aig {
    assert!(width.is_power_of_two(), "width must be a power of two");
    let stages = width.trailing_zeros() as usize;
    let mut aig = Aig::new();
    aig.set_name(format!("bar{width}"));
    let data = input_word(&mut aig, width);
    let amount = input_word(&mut aig, stages);
    let mut word = data;
    for (s, &sel) in amount.iter().enumerate() {
        let by = 1usize << s;
        let rotated: Vec<Lit> = (0..width).map(|i| word[(i + width - by) % width]).collect();
        word = mux_word(&mut aig, sel, &rotated, &word);
    }
    output_word(&mut aig, &word);
    aig
}

/// Maximum of four `width`-bit unsigned operands (EPFL `max`-style):
/// outputs the maximum value.
pub fn max4(width: usize) -> Aig {
    let mut aig = Aig::new();
    aig.set_name(format!("max{width}x4"));
    let ops: Vec<Vec<Lit>> = (0..4).map(|_| input_word(&mut aig, width)).collect();
    let m01 = max2(&mut aig, &ops[0], &ops[1]);
    let m23 = max2(&mut aig, &ops[2], &ops[3]);
    let m = max2(&mut aig, &m01, &m23);
    output_word(&mut aig, &m);
    aig
}

fn max2(aig: &mut Aig, a: &[Lit], b: &[Lit]) -> Vec<Lit> {
    let ge = unsigned_ge(aig, a, b);
    mux_word(aig, ge, a, b)
}

/// Unsigned `n`×`m` array multiplier: rows of partial products reduced by
/// ripple adders (the c6288 structure, generalized).
pub fn array_multiplier(n: usize, m: usize) -> Aig {
    let mut aig = Aig::new();
    aig.set_name(format!("mul{n}x{m}"));
    let a = input_word(&mut aig, n);
    let b = input_word(&mut aig, m);
    let product = array_multiply(&mut aig, &a, &b);
    output_word(&mut aig, &product);
    aig
}

/// The multiplier datapath as a reusable function: returns the
/// `a.len() + b.len()`-bit unsigned product word.
pub fn array_multiply(aig: &mut Aig, a: &[Lit], b: &[Lit]) -> Vec<Lit> {
    let (n, m) = (a.len(), b.len());
    let total = n + m;
    let mut acc = vec![Lit::FALSE; total];
    for (j, &bj) in b.iter().enumerate() {
        // Row j: (a & bj) << j, accumulated with a ripple adder.
        let mut row = vec![Lit::FALSE; total];
        for (i, &ai) in a.iter().enumerate() {
            row[i + j] = aig.and(ai, bj);
        }
        let (sum, _) = ripple_add(aig, &acc, &row, Lit::FALSE);
        acc = sum;
    }
    acc
}

/// Dedicated unsigned squarer (EPFL `square`-style): exploits partial-
/// product symmetry (`aᵢaⱼ` appears twice ⇒ shifted once).
pub fn squarer(n: usize) -> Aig {
    let mut aig = Aig::new();
    aig.set_name(format!("square{n}"));
    let a = input_word(&mut aig, n);
    let total = 2 * n;
    let mut acc = vec![Lit::FALSE; total];
    // Row i gathers the diagonal term aᵢ at weight 2i and the doubled
    // off-diagonal terms aᵢaⱼ (j > i) at weight i+j+1 — all distinct
    // positions, so one ripple add per row suffices.
    for i in 0..n {
        let mut row = vec![Lit::FALSE; total];
        row[2 * i] = a[i];
        for j in (i + 1)..n {
            if i + j + 1 < total {
                row[i + j + 1] = aig.and(a[i], a[j]);
            }
        }
        let (sum, _) = ripple_add(&mut aig, &acc, &row, Lit::FALSE);
        acc = sum;
    }
    output_word(&mut aig, &acc);
    aig
}

/// Radix-4 Booth multiplier of two `n`-bit *signed* operands, producing
/// the `2n`-bit signed product (the paper's `mul32-booth`/`mul64-booth`).
///
/// # Panics
///
/// Panics if `n` is odd or zero.
pub fn booth_multiplier(n: usize) -> Aig {
    assert!(
        n > 0 && n.is_multiple_of(2),
        "width must be positive and even"
    );
    let mut aig = Aig::new();
    aig.set_name(format!("mul{n}-booth"));
    let a = input_word(&mut aig, n);
    let b = input_word(&mut aig, n);
    let total = 2 * n;
    // Sign-extended A and 2A to full width.
    let sext = |w: &[Lit], total: usize| -> Vec<Lit> {
        let mut v = w.to_vec();
        let sign = *w.last().expect("operand words have width n >= 1");
        v.resize(total, sign);
        v
    };
    let a_ext = sext(&a, total);
    // 2A needs n+1 significant bits before sign extension — the sign is
    // still A's sign bit.
    let a2_ext = {
        let mut v = vec![Lit::FALSE];
        v.extend_from_slice(&a);
        let sign = *a.last().expect("operand words have width n >= 1");
        v.resize(total, sign);
        v
    };
    let mut acc = vec![Lit::FALSE; total];
    let mut prev = Lit::FALSE;
    let num_groups = n / 2;
    for g in 0..num_groups {
        let b0 = prev;
        let b1 = b[2 * g];
        let b2 = if 2 * g + 1 < n {
            b[2 * g + 1]
        } else {
            *b.last().expect("operand words have width n >= 1")
        };
        prev = b2;
        // Booth encoding of (b2 b1 b0): value v ∈ {-2,-1,0,1,2}.
        // one  = b0 ^ b1        (|v| == 1)
        // two  = (b2 & !b1 & !b0) | (!b2 & b1 & b0)   (|v| == 2)
        // neg  = b2             (v < 0)
        let one = aig.xor(b0, b1);
        let t1 = aig.and(!b1, !b0);
        let t1 = aig.and(b2, t1);
        let t2 = aig.and(b1, b0);
        let t2 = aig.and(!b2, t2);
        let two = aig.or(t1, t2);
        let neg = b2;
        // Select |v|·A, then conditionally negate: xor with neg and add
        // neg as carry-in at the group's weight position.
        let zero = vec![Lit::FALSE; total];
        let sel1 = mux_word(&mut aig, one, &a_ext, &zero);
        let sel = mux_word(&mut aig, two, &a2_ext, &sel1);
        let inverted: Vec<Lit> = sel.iter().map(|&x| aig.xor(x, neg)).collect();
        // Shift into position 2g and add. Two's-complement negation of the
        // shifted row is (!sel << 2g) + (1 << 2g) modulo 2^total: the
        // vacated low bits stay zero and the +1 lands at weight 2g.
        let mut row = vec![Lit::FALSE; total];
        for (i, &bit) in inverted.iter().enumerate() {
            if i + 2 * g < total {
                row[i + 2 * g] = bit;
            }
        }
        let mut carry_row = vec![Lit::FALSE; total];
        carry_row[2 * g] = neg;
        let (sum, _) = ripple_add(&mut aig, &acc, &row, Lit::FALSE);
        let (sum2, _) = ripple_add(&mut aig, &sum, &carry_row, Lit::FALSE);
        acc = sum2;
    }
    output_word(&mut aig, &acc);
    aig
}

/// Fixed-point sine approximation (EPFL `sin`-style): evaluates
/// `x − x³·C3 + x⁵·C5` in Q0.16 with truncating multiplications, where
/// `C3 = ⌊2¹⁶/6⌋` and `C5 = ⌊2¹⁶/120⌋`. The exact bit-level model is
/// mirrored by [`sin_poly_model`].
pub fn sin_poly(n: usize) -> Aig {
    let mut aig = Aig::new();
    aig.set_name(format!("sin{n}"));
    let x = input_word(&mut aig, n);
    let trunc_mul = |aig: &mut Aig, a: &[Lit], b: &[Lit]| -> Vec<Lit> {
        let p = array_multiply(aig, a, b);
        p[a.len()..a.len() + b.len().min(a.len())].to_vec()
    };
    let x2 = trunc_mul(&mut aig, &x, &x);
    let x3 = trunc_mul(&mut aig, &x2, &x);
    let x5 = trunc_mul(&mut aig, &x3, &x2);
    let c3 = const_word((1u64 << n) / 6, n);
    let c5 = const_word((1u64 << n) / 120, n);
    let t3 = trunc_mul(&mut aig, &x3, &c3);
    let t5 = trunc_mul(&mut aig, &x5, &c5);
    let (d, _) = ripple_sub(&mut aig, &x, &t3);
    let (y, _) = ripple_add(&mut aig, &d, &t5, Lit::FALSE);
    output_word(&mut aig, &y);
    aig
}

/// Software model of [`sin_poly`] — bit-exact, for verification.
pub fn sin_poly_model(x: u64, n: usize) -> u64 {
    let mask = (1u64 << n) - 1;
    let tm = |a: u64, b: u64| ((a as u128 * b as u128) >> n) as u64 & mask;
    let x2 = tm(x, x);
    let x3 = tm(x2, x);
    let x5 = tm(x3, x2);
    let c3 = (1u64 << n) / 6;
    let c5 = (1u64 << n) / 120;
    let t3 = tm(x3, c3);
    let t5 = tm(x5, c5);
    x.wrapping_sub(t3).wrapping_add(t5) & mask
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::words::{bits_to_u64, u64_to_bits};
    use slap_aig::sim::simulate_bits;
    use slap_aig::Rng64;

    fn run(aig: &Aig, ins: &[bool]) -> Vec<bool> {
        simulate_bits(aig, ins)
    }

    #[test]
    fn ripple_and_cla_agree_with_arithmetic() {
        let mut rng = Rng64::seed_from(1);
        for n in [8usize, 16] {
            let rc = ripple_carry_adder(n);
            let cla = carry_lookahead_adder(n);
            for _ in 0..20 {
                let x = rng.next_u64() & ((1 << n) - 1);
                let y = rng.next_u64() & ((1 << n) - 1);
                let mut ins = u64_to_bits(x, n);
                ins.extend(u64_to_bits(y, n));
                for aig in [&rc, &cla] {
                    let out = run(aig, &ins);
                    assert_eq!(bits_to_u64(&out), x + y, "{x}+{y} width {n}");
                }
            }
        }
    }

    #[test]
    fn cla_is_shallower_than_ripple() {
        let rc = ripple_carry_adder(32);
        let cla = carry_lookahead_adder(32);
        assert!(cla.depth() < rc.depth());
    }

    #[test]
    fn barrel_shifter_rotates() {
        let aig = barrel_shifter(16);
        let mut rng = Rng64::seed_from(2);
        for _ in 0..20 {
            let data = rng.next_u64() & 0xFFFF;
            let amt = rng.below(16);
            let mut ins = u64_to_bits(data, 16);
            ins.extend(u64_to_bits(amt, 4));
            let out = run(&aig, &ins);
            let expect = ((data << amt) | (data >> (16 - amt))) & 0xFFFF;
            let expect = if amt == 0 { data } else { expect };
            assert_eq!(bits_to_u64(&out), expect, "rot {data:#x} by {amt}");
        }
    }

    #[test]
    fn max4_picks_maximum() {
        let aig = max4(8);
        let mut rng = Rng64::seed_from(3);
        for _ in 0..20 {
            let vals: Vec<u64> = (0..4).map(|_| rng.below(256)).collect();
            let mut ins = Vec::new();
            for &v in &vals {
                ins.extend(u64_to_bits(v, 8));
            }
            let out = run(&aig, &ins);
            assert_eq!(bits_to_u64(&out), *vals.iter().max().expect("4 values"));
        }
    }

    #[test]
    fn array_multiplier_matches() {
        let aig = array_multiplier(8, 8);
        let mut rng = Rng64::seed_from(4);
        for _ in 0..20 {
            let x = rng.below(256);
            let y = rng.below(256);
            let mut ins = u64_to_bits(x, 8);
            ins.extend(u64_to_bits(y, 8));
            let out = run(&aig, &ins);
            assert_eq!(bits_to_u64(&out), x * y, "{x}*{y}");
        }
    }

    #[test]
    fn squarer_matches() {
        let aig = squarer(8);
        for x in [0u64, 1, 7, 100, 255] {
            let out = run(&aig, &u64_to_bits(x, 8));
            assert_eq!(bits_to_u64(&out), x * x, "{x}^2");
        }
    }

    #[test]
    fn booth_matches_signed_multiplication() {
        let aig = booth_multiplier(8);
        let mut rng = Rng64::seed_from(5);
        for _ in 0..40 {
            let x = rng.below(256) as i64;
            let y = rng.below(256) as i64;
            let xs = (x as u8) as i8 as i64;
            let ys = (y as u8) as i8 as i64;
            let mut ins = u64_to_bits(x as u64, 8);
            ins.extend(u64_to_bits(y as u64, 8));
            let out = run(&aig, &ins);
            let got = bits_to_u64(&out) as i64;
            let got = (got << 48) >> 48; // sign-extend 16-bit
            assert_eq!(got, xs * ys, "{xs}*{ys}");
        }
    }

    #[test]
    fn booth_corner_cases() {
        let aig = booth_multiplier(8);
        for (x, y) in [(0x80u64, 0x80u64), (0x80, 0x7F), (0xFF, 0xFF), (0, 0x80)] {
            let mut ins = u64_to_bits(x, 8);
            ins.extend(u64_to_bits(y, 8));
            let out = run(&aig, &ins);
            let got = ((bits_to_u64(&out) as i64) << 48) >> 48;
            let xs = (x as u8) as i8 as i64;
            let ys = (y as u8) as i8 as i64;
            assert_eq!(got, xs * ys, "{xs}*{ys}");
        }
    }

    #[test]
    fn sin_matches_model() {
        let n = 10; // keep the test-size multiplier small
        let aig = sin_poly(n);
        let mut rng = Rng64::seed_from(6);
        for _ in 0..10 {
            let x = rng.below(1 << n);
            let out = run(&aig, &u64_to_bits(x, n));
            assert_eq!(bits_to_u64(&out), sin_poly_model(x, n), "x={x}");
        }
    }
}
