//! A PicoRV32-flavoured single-cycle RV32I datapath slice.
//!
//! The paper's "Pico RISCV" entry is the PicoRV32 core; its combinational
//! heart is decode + ALU + branch resolution. This generator builds that
//! slice: given an instruction word, two register operands, and the PC,
//! it produces the ALU/LUI result, the next PC, and the branch-taken
//! flag, for the RV32I subset {OP, OP-IMM, BRANCH, JAL, LUI}. A software
//! model ([`datapath_model`]) mirrors it bit-exactly.

use slap_aig::{Aig, Lit};

use crate::words::{
    const_word, input_word, mux_word, output_word, ripple_add, ripple_sub, xor_word,
};

const OPCODE_OP: u32 = 0b0110011;
const OPCODE_OP_IMM: u32 = 0b0010011;
const OPCODE_BRANCH: u32 = 0b1100011;
const OPCODE_JAL: u32 = 0b1101111;
const OPCODE_LUI: u32 = 0b0110111;

/// Builds the datapath AIG. Inputs (in order): `instr[32]`, `rs1[32]`,
/// `rs2[32]`, `pc[32]`. Outputs: `result[32]`, `next_pc[32]`, `taken`.
pub fn rv32_datapath() -> Aig {
    let mut aig = Aig::new();
    aig.set_name("pico-rv32");
    let instr = input_word(&mut aig, 32);
    let rs1 = input_word(&mut aig, 32);
    let rs2 = input_word(&mut aig, 32);
    let pc = input_word(&mut aig, 32);

    let opcode_is = |aig: &mut Aig, op: u32| -> Lit {
        let bits: Vec<Lit> = (0..7)
            .map(|i| instr[i].xor_complement((op >> i) & 1 == 0))
            .collect();
        aig.and_all(bits)
    };
    let is_op = opcode_is(&mut aig, OPCODE_OP);
    let is_op_imm = opcode_is(&mut aig, OPCODE_OP_IMM);
    let is_branch = opcode_is(&mut aig, OPCODE_BRANCH);
    let is_jal = opcode_is(&mut aig, OPCODE_JAL);
    let is_lui = opcode_is(&mut aig, OPCODE_LUI);
    let funct3: Vec<Lit> = instr[12..15].to_vec();
    let funct7_5 = instr[30];

    // Immediates.
    let sign = instr[31];
    let mut imm_i = vec![Lit::FALSE; 32];
    imm_i[..12].copy_from_slice(&instr[20..32]);
    for slot in imm_i.iter_mut().skip(12) {
        *slot = sign;
    }
    let mut imm_b = vec![Lit::FALSE; 32];
    imm_b[1..5].copy_from_slice(&instr[8..12]);
    imm_b[5..11].copy_from_slice(&instr[25..31]);
    imm_b[11] = instr[7];
    for slot in imm_b.iter_mut().skip(12) {
        *slot = sign;
    }
    let mut imm_j = vec![Lit::FALSE; 32];
    imm_j[1..11].copy_from_slice(&instr[21..31]);
    imm_j[11] = instr[20];
    imm_j[12..20].copy_from_slice(&instr[12..20]);
    for slot in imm_j.iter_mut().skip(20) {
        *slot = sign;
    }
    let mut imm_u = vec![Lit::FALSE; 32];
    imm_u[12..32].copy_from_slice(&instr[12..32]);

    // ALU.
    let in2 = mux_word(&mut aig, is_op_imm, &imm_i, &rs2);
    let (sum, _) = ripple_add(&mut aig, &rs1, &in2, Lit::FALSE);
    let (diff, carry) = ripple_sub(&mut aig, &rs1, &in2);
    let do_sub = aig.and(is_op, funct7_5);
    let addsub = mux_word(&mut aig, do_sub, &diff, &sum);
    let ltu = !carry; // rs1 < in2 unsigned
    let sign_differs = aig.xor(rs1[31], in2[31]);
    let lts = aig.mux(sign_differs, rs1[31], diff[31]);
    let xorv = xor_word(&mut aig, &rs1, &in2);
    let orv: Vec<Lit> = rs1.iter().zip(&in2).map(|(&a, &b)| aig.or(a, b)).collect();
    let andv: Vec<Lit> = rs1.iter().zip(&in2).map(|(&a, &b)| aig.and(a, b)).collect();
    let shamt: Vec<Lit> = in2[..5].to_vec();
    let sll = shift_left(&mut aig, &rs1, &shamt);
    let fill = aig.and(funct7_5, rs1[31]); // SRA fills with the sign bit
    let srx = shift_right(&mut aig, &rs1, &shamt, fill);
    let mut slt_word = vec![Lit::FALSE; 32];
    slt_word[0] = lts;
    let mut sltu_word = vec![Lit::FALSE; 32];
    sltu_word[0] = ltu;

    // 8-way select on funct3.
    let choices = [
        &addsub, &sll, &slt_word, &sltu_word, &xorv, &srx, &orv, &andv,
    ];
    let mut alu = choices[0].clone();
    // Binary mux tree over the three funct3 bits.
    let mut level: Vec<Vec<Lit>> = choices.iter().map(|w| w.to_vec()).collect();
    for &sel in funct3.iter().take(3) {
        let mut next = Vec::new();
        for pair in level.chunks(2) {
            next.push(mux_word(&mut aig, sel, &pair[1], &pair[0]));
        }
        level = next;
    }
    alu.clone_from(&level[0]);
    let result = mux_word(&mut aig, is_lui, &imm_u, &alu);

    // Branch resolution.
    let ne = aig.or_all(xorv.iter().copied());
    let eq = !ne;
    let ges = !lts;
    let geu = carry;
    // funct3: 000 beq, 001 bne, 100 blt, 101 bge, 110 bltu, 111 bgeu.
    let conds = [eq, ne, Lit::FALSE, Lit::FALSE, lts, ges, ltu, geu];
    let mut clevel: Vec<Lit> = conds.to_vec();
    for &sel in funct3.iter().take(3) {
        let mut next = Vec::new();
        for pair in clevel.chunks(2) {
            next.push(aig.mux(sel, pair[1], pair[0]));
        }
        clevel = next;
    }
    let branch_cond = clevel[0];
    let taken_branch = aig.and(is_branch, branch_cond);
    let taken = aig.or(taken_branch, is_jal);

    // Next PC.
    let four = const_word(4, 32);
    let (pc4, _) = ripple_add(&mut aig, &pc, &four, Lit::FALSE);
    let off = mux_word(&mut aig, is_jal, &imm_j, &imm_b);
    let (pc_tgt, _) = ripple_add(&mut aig, &pc, &off, Lit::FALSE);
    let next_pc = mux_word(&mut aig, taken, &pc_tgt, &pc4);

    output_word(&mut aig, &result);
    output_word(&mut aig, &next_pc);
    aig.add_po(taken);
    aig
}

fn shift_left(aig: &mut Aig, w: &[Lit], amt: &[Lit]) -> Vec<Lit> {
    let n = w.len();
    let mut cur = w.to_vec();
    for (s, &sel) in amt.iter().enumerate() {
        let by = 1usize << s;
        let shifted: Vec<Lit> = (0..n)
            .map(|i| if i >= by { cur[i - by] } else { Lit::FALSE })
            .collect();
        cur = mux_word(aig, sel, &shifted, &cur);
    }
    cur
}

fn shift_right(aig: &mut Aig, w: &[Lit], amt: &[Lit], fill: Lit) -> Vec<Lit> {
    let n = w.len();
    let mut cur = w.to_vec();
    for (s, &sel) in amt.iter().enumerate() {
        let by = 1usize << s;
        let shifted: Vec<Lit> = (0..n)
            .map(|i| if i + by < n { cur[i + by] } else { fill })
            .collect();
        cur = mux_word(aig, sel, &shifted, &cur);
    }
    cur
}

/// Software model mirroring [`rv32_datapath`]: returns
/// `(result, next_pc, taken)`.
pub fn datapath_model(instr: u32, rs1: u32, rs2: u32, pc: u32) -> (u32, u32, bool) {
    let opcode = instr & 0x7F;
    let funct3 = (instr >> 12) & 7;
    let funct7_5 = (instr >> 30) & 1 != 0;
    let imm_i = ((instr as i32) >> 20) as u32;
    let imm_b = {
        let b = ((instr >> 8) & 0xF) << 1
            | ((instr >> 25) & 0x3F) << 5
            | ((instr >> 7) & 1) << 11
            | ((instr >> 31) & 1) << 12;
        ((b as i32) << 19 >> 19) as u32
    };
    let imm_j = {
        let j = ((instr >> 21) & 0x3FF) << 1
            | ((instr >> 20) & 1) << 11
            | ((instr >> 12) & 0xFF) << 12
            | ((instr >> 31) & 1) << 20;
        ((j as i32) << 11 >> 11) as u32
    };
    let imm_u = instr & 0xFFFF_F000;
    let is_op = opcode == OPCODE_OP;
    let is_op_imm = opcode == OPCODE_OP_IMM;
    let is_branch = opcode == OPCODE_BRANCH;
    let is_jal = opcode == OPCODE_JAL;
    let is_lui = opcode == OPCODE_LUI;
    let in2 = if is_op_imm { imm_i } else { rs2 };
    let shamt = in2 & 31;
    let do_sub = is_op && funct7_5;
    let alu = match funct3 {
        0 => {
            if do_sub {
                rs1.wrapping_sub(in2)
            } else {
                rs1.wrapping_add(in2)
            }
        }
        1 => rs1 << shamt,
        2 => ((rs1 as i32) < (in2 as i32)) as u32,
        3 => (rs1 < in2) as u32,
        4 => rs1 ^ in2,
        5 => {
            if funct7_5 {
                ((rs1 as i32) >> shamt) as u32
            } else {
                rs1 >> shamt
            }
        }
        6 => rs1 | in2,
        7 => rs1 & in2,
        _ => unreachable!(),
    };
    let result = if is_lui { imm_u } else { alu };
    let cond = match funct3 {
        0 => rs1 == in2,
        1 => rs1 != in2,
        4 => (rs1 as i32) < (in2 as i32),
        5 => (rs1 as i32) >= (in2 as i32),
        6 => rs1 < in2,
        7 => rs1 >= in2,
        _ => false,
    };
    let taken = (is_branch && cond) || is_jal;
    let next_pc = if taken {
        pc.wrapping_add(if is_jal { imm_j } else { imm_b })
    } else {
        pc.wrapping_add(4)
    };
    (result, next_pc, taken)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::words::{bits_to_u64, u64_to_bits};
    use slap_aig::sim::simulate_bits;
    use slap_aig::Rng64;

    fn run(aig: &Aig, instr: u32, rs1: u32, rs2: u32, pc: u32) -> (u32, u32, bool) {
        let mut ins = u64_to_bits(instr as u64, 32);
        ins.extend(u64_to_bits(rs1 as u64, 32));
        ins.extend(u64_to_bits(rs2 as u64, 32));
        ins.extend(u64_to_bits(pc as u64, 32));
        let out = simulate_bits(aig, &ins);
        (
            bits_to_u64(&out[..32]) as u32,
            bits_to_u64(&out[32..64]) as u32,
            out[64],
        )
    }

    fn encode_r(funct7: u32, rs2: u32, rs1: u32, funct3: u32, opcode: u32) -> u32 {
        (funct7 << 25) | (rs2 << 20) | (rs1 << 15) | (funct3 << 12) | (5 << 7) | opcode
    }

    #[test]
    fn alu_register_ops_match_model() {
        let aig = rv32_datapath();
        let mut rng = Rng64::seed_from(11);
        for funct3 in 0..8u32 {
            for funct7 in [0u32, 0x20] {
                // SUB/SRA variants only valid for funct3 0 and 5.
                if funct7 == 0x20 && funct3 != 0 && funct3 != 5 {
                    continue;
                }
                let instr = encode_r(funct7, 2, 1, funct3, OPCODE_OP);
                let rs1 = rng.next_u64() as u32;
                let rs2 = rng.next_u64() as u32;
                let pc = (rng.next_u64() as u32) & !3;
                assert_eq!(
                    run(&aig, instr, rs1, rs2, pc),
                    datapath_model(instr, rs1, rs2, pc),
                    "funct3={funct3} funct7={funct7:#x}"
                );
            }
        }
    }

    #[test]
    fn immediate_ops_match_model() {
        let aig = rv32_datapath();
        let mut rng = Rng64::seed_from(12);
        for funct3 in [0u32, 2, 3, 4, 6, 7] {
            let imm = (rng.next_u64() as u32) & 0xFFF;
            let instr = (imm << 20) | (1 << 15) | (funct3 << 12) | (5 << 7) | OPCODE_OP_IMM;
            let rs1 = rng.next_u64() as u32;
            let rs2 = rng.next_u64() as u32;
            let pc = 0x1000;
            assert_eq!(
                run(&aig, instr, rs1, rs2, pc),
                datapath_model(instr, rs1, rs2, pc),
                "funct3={funct3}"
            );
        }
    }

    #[test]
    fn branches_match_model() {
        let aig = rv32_datapath();
        let mut rng = Rng64::seed_from(13);
        for funct3 in [0u32, 1, 4, 5, 6, 7] {
            for equal in [false, true] {
                let rs1 = rng.next_u64() as u32;
                let rs2 = if equal { rs1 } else { rng.next_u64() as u32 };
                let imm = (rng.next_u64() as u32) & 0x1FFE;
                let instr = (((imm >> 12) & 1) << 31)
                    | (((imm >> 5) & 0x3F) << 25)
                    | (2 << 20)
                    | (1 << 15)
                    | (funct3 << 12)
                    | (((imm >> 1) & 0xF) << 8)
                    | (((imm >> 11) & 1) << 7)
                    | OPCODE_BRANCH;
                let pc = 0x8000_0000u32;
                assert_eq!(
                    run(&aig, instr, rs1, rs2, pc),
                    datapath_model(instr, rs1, rs2, pc),
                    "funct3={funct3} equal={equal}"
                );
            }
        }
    }

    #[test]
    fn jal_and_lui_match_model() {
        let aig = rv32_datapath();
        let mut rng = Rng64::seed_from(14);
        for _ in 0..8 {
            let raw = rng.next_u64() as u32;
            let jal = (raw & 0xFFFF_F000) | (5 << 7) | OPCODE_JAL;
            let lui = (raw & 0xFFFF_F000) | (5 << 7) | OPCODE_LUI;
            let rs1 = rng.next_u64() as u32;
            let rs2 = rng.next_u64() as u32;
            let pc = (rng.next_u64() as u32) & !3;
            for instr in [jal, lui] {
                assert_eq!(
                    run(&aig, instr, rs1, rs2, pc),
                    datapath_model(instr, rs1, rs2, pc)
                );
            }
        }
    }

    #[test]
    fn datapath_size_is_core_like() {
        let aig = rv32_datapath();
        assert!(aig.num_ands() > 1500, "{}", aig.num_ands());
    }
}
