//! Multi-bit word helpers shared by the circuit generators.
//!
//! A word is a `Vec<Lit>`, least-significant bit first.

use slap_aig::{Aig, Lit};

/// Adds `n` fresh primary inputs as a word (LSB first).
pub fn input_word(aig: &mut Aig, n: usize) -> Vec<Lit> {
    aig.add_pis(n)
}

/// A constant word of the given unsigned value.
pub fn const_word(value: u64, n: usize) -> Vec<Lit> {
    (0..n)
        .map(|i| {
            if (value >> i) & 1 != 0 {
                Lit::TRUE
            } else {
                Lit::FALSE
            }
        })
        .collect()
}

/// Registers each bit of a word as a primary output.
pub fn output_word(aig: &mut Aig, word: &[Lit]) {
    for &b in word {
        aig.add_po(b);
    }
}

/// Full adder: returns (sum, carry).
pub fn full_adder(aig: &mut Aig, a: Lit, b: Lit, c: Lit) -> (Lit, Lit) {
    let axb = aig.xor(a, b);
    let sum = aig.xor(axb, c);
    let carry = aig.maj(a, b, c);
    (sum, carry)
}

/// Half adder: returns (sum, carry).
pub fn half_adder(aig: &mut Aig, a: Lit, b: Lit) -> (Lit, Lit) {
    (aig.xor(a, b), aig.and(a, b))
}

/// Ripple-carry addition of two equal-width words with carry-in.
/// Returns (sum word, carry-out).
///
/// # Panics
///
/// Panics if the words differ in width.
pub fn ripple_add(aig: &mut Aig, a: &[Lit], b: &[Lit], cin: Lit) -> (Vec<Lit>, Lit) {
    assert_eq!(a.len(), b.len(), "operand widths differ");
    let mut sum = Vec::with_capacity(a.len());
    let mut carry = cin;
    for (&x, &y) in a.iter().zip(b) {
        let (s, c) = full_adder(aig, x, y, carry);
        sum.push(s);
        carry = c;
    }
    (sum, carry)
}

/// Two's-complement subtraction `a - b`; returns (difference, borrow-free
/// carry-out — 1 when `a >= b` for unsigned operands).
pub fn ripple_sub(aig: &mut Aig, a: &[Lit], b: &[Lit]) -> (Vec<Lit>, Lit) {
    let nb: Vec<Lit> = b.iter().map(|&x| !x).collect();
    ripple_add(aig, a, &nb, Lit::TRUE)
}

/// Unsigned comparison `a >= b`.
pub fn unsigned_ge(aig: &mut Aig, a: &[Lit], b: &[Lit]) -> Lit {
    ripple_sub(aig, a, b).1
}

/// Bitwise multiplexer over words: `sel ? t : e`.
///
/// # Panics
///
/// Panics if the words differ in width.
pub fn mux_word(aig: &mut Aig, sel: Lit, t: &[Lit], e: &[Lit]) -> Vec<Lit> {
    assert_eq!(t.len(), e.len(), "operand widths differ");
    t.iter().zip(e).map(|(&x, &y)| aig.mux(sel, x, y)).collect()
}

/// Bitwise XOR of two words.
pub fn xor_word(aig: &mut Aig, a: &[Lit], b: &[Lit]) -> Vec<Lit> {
    assert_eq!(a.len(), b.len(), "operand widths differ");
    a.iter().zip(b).map(|(&x, &y)| aig.xor(x, y)).collect()
}

/// Left-shift by a fixed amount, dropping high bits (width preserved).
pub fn shift_left_const(word: &[Lit], by: usize) -> Vec<Lit> {
    let n = word.len();
    let mut out = vec![Lit::FALSE; n];
    if by < n {
        out[by..n].copy_from_slice(&word[..n - by]);
    }
    out
}

/// Interprets a simulation output slice as an unsigned number (LSB first).
pub fn bits_to_u64(bits: &[bool]) -> u64 {
    bits.iter()
        .enumerate()
        .fold(0u64, |acc, (i, &b)| acc | ((b as u64) << i))
}

/// Builds the `n`-bit input assignment of an unsigned value (LSB first).
pub fn u64_to_bits(value: u64, n: usize) -> Vec<bool> {
    (0..n).map(|i| (value >> i) & 1 != 0).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use slap_aig::sim::simulate_bits;

    #[test]
    fn full_adder_truth_table() {
        for bits in 0u32..8 {
            let mut aig = Aig::new();
            let a = Lit::FALSE.xor_complement(bits & 1 != 0);
            let b = Lit::FALSE.xor_complement(bits & 2 != 0);
            let c = Lit::FALSE.xor_complement(bits & 4 != 0);
            let (s, co) = full_adder(&mut aig, a, b, c);
            let total = (bits & 1) + ((bits >> 1) & 1) + ((bits >> 2) & 1);
            assert_eq!(s == Lit::TRUE, total & 1 == 1);
            assert_eq!(co == Lit::TRUE, total >= 2);
        }
    }

    #[test]
    fn ripple_add_matches_arithmetic() {
        let mut aig = Aig::new();
        let a = input_word(&mut aig, 8);
        let b = input_word(&mut aig, 8);
        let (s, co) = ripple_add(&mut aig, &a, &b, Lit::FALSE);
        output_word(&mut aig, &s);
        aig.add_po(co);
        for (x, y) in [(0u64, 0u64), (255, 1), (170, 85), (200, 100)] {
            let mut ins = u64_to_bits(x, 8);
            ins.extend(u64_to_bits(y, 8));
            let out = simulate_bits(&aig, &ins);
            let got = bits_to_u64(&out);
            assert_eq!(got, x + y, "{x}+{y}");
        }
    }

    #[test]
    fn subtraction_and_comparison() {
        let mut aig = Aig::new();
        let a = input_word(&mut aig, 8);
        let b = input_word(&mut aig, 8);
        let (d, ge) = ripple_sub(&mut aig, &a, &b);
        output_word(&mut aig, &d);
        aig.add_po(ge);
        for (x, y) in [(10u64, 3u64), (3, 10), (200, 200), (0, 255)] {
            let mut ins = u64_to_bits(x, 8);
            ins.extend(u64_to_bits(y, 8));
            let out = simulate_bits(&aig, &ins);
            assert_eq!(bits_to_u64(&out[..8]), x.wrapping_sub(y) & 0xFF);
            assert_eq!(out[8], x >= y, "{x}>={y}");
        }
    }

    #[test]
    fn mux_and_shift_helpers() {
        let mut aig = Aig::new();
        let a = input_word(&mut aig, 4);
        let b = input_word(&mut aig, 4);
        let s = aig.add_pi();
        let m = mux_word(&mut aig, s, &a, &b);
        output_word(&mut aig, &m);
        let sh = shift_left_const(&a, 2);
        output_word(&mut aig, &sh);
        let mut ins = u64_to_bits(0b1010, 4);
        ins.extend(u64_to_bits(0b0110, 4));
        ins.push(true);
        let out = simulate_bits(&aig, &ins);
        assert_eq!(bits_to_u64(&out[..4]), 0b1010);
        assert_eq!(bits_to_u64(&out[4..8]), 0b1000); // 1010 << 2, truncated
    }

    #[test]
    fn const_word_bits() {
        let w = const_word(0b1011, 6);
        assert_eq!(w[0], Lit::TRUE);
        assert_eq!(w[1], Lit::TRUE);
        assert_eq!(w[2], Lit::FALSE);
        assert_eq!(w[3], Lit::TRUE);
        assert_eq!(w[5], Lit::FALSE);
    }

    #[test]
    fn u64_round_trip() {
        for v in [0u64, 1, 0xDEAD, u32::MAX as u64] {
            assert_eq!(bits_to_u64(&u64_to_bits(v, 64)), v);
        }
    }
}
