//! Determinism guarantees of the observability substrate: two identical
//! instrumented runs must serialize to byte-identical JSONL once timing
//! fields are stripped, regardless of thread interleaving.

use std::time::Duration;

use slap_obs::{parse_object, Histogram, JsonlSink, MetricValue, Record, Registry, Sink, Value};

/// A stand-in for an instrumented mapping run: counters, a histogram,
/// and a wall-clock timer (the nondeterministic part).
fn instrumented_workload(registry: &Registry, sleep_ns: u64) {
    registry.counter("cuts.enumerated").add(1234);
    registry.counter("cuts.dominance_kills").add(98);
    registry.gauge("nodes.live").set(417);
    for v in [0u64, 1, 3, 7, 8, 250, 251, 1 << 20] {
        registry.histogram("cuts.per_node").observe(v);
    }
    let timer = registry.timer("map/cover");
    let start = std::time::Instant::now();
    std::thread::sleep(Duration::from_nanos(sleep_ns));
    timer.record(start.elapsed());
}

fn snapshot_jsonl(registry: &Registry) -> String {
    let mut out = Vec::new();
    let record = registry.snapshot().without_timers().to_record();
    JsonlSink::new(&mut out).emit(&record).unwrap();
    String::from_utf8(out).unwrap()
}

#[test]
fn identical_runs_yield_byte_identical_jsonl_modulo_timing() {
    let first = Registry::new();
    let second = Registry::new();
    // Different sleep times: wall-clock results differ, metrics must not.
    instrumented_workload(&first, 1_000);
    instrumented_workload(&second, 2_000_000);

    // Timers differ between the runs...
    let (t1, t2) = (first.snapshot(), second.snapshot());
    assert!(matches!(
        t1.get("map/cover"),
        Some(MetricValue::Timer { count: 1, .. })
    ));
    assert!(matches!(
        t2.get("map/cover"),
        Some(MetricValue::Timer { count: 1, .. })
    ));

    // ...but the timing-stripped JSONL is byte-identical.
    let line1 = snapshot_jsonl(&first);
    let line2 = snapshot_jsonl(&second);
    assert_eq!(line1, line2);
    assert_eq!(
        line1,
        "{\"cuts.dominance_kills\":98,\"cuts.enumerated\":1234,\
         \"cuts.per_node\":[1,1,1,1,1,0,0,0,2,0,0,0,0,0,0,0,0,0,0,0,0,1],\
         \"nodes.live\":417}\n"
    );

    // The line parses back to the same ordered fields.
    let parsed = parse_object(line1.trim_end()).unwrap();
    let record: Record = parsed.into_iter().collect();
    assert_eq!(
        record.get("cuts.enumerated").and_then(Value::as_u64),
        Some(1234)
    );
}

#[test]
fn snapshot_order_is_independent_of_registration_order() {
    let forward = Registry::new();
    forward.counter("alpha").add(1);
    forward.counter("mid").add(2);
    forward.counter("zeta").add(3);

    let reverse = Registry::new();
    reverse.counter("zeta").add(3);
    reverse.counter("mid").add(2);
    reverse.counter("alpha").add(1);

    assert_eq!(forward.snapshot(), reverse.snapshot());
    assert_eq!(snapshot_jsonl(&forward), snapshot_jsonl(&reverse));
}

#[test]
fn histogram_buckets_split_exactly_at_powers_of_two() {
    let registry = Registry::new();
    let h = registry.histogram("boundaries");
    // One observation per boundary-adjacent value around 2^4.
    for v in [15u64, 16, 31, 32] {
        h.observe(v);
    }
    // 15 → bucket 4 ([8,15]); 16 and 31 → bucket 5 ([16,31]); 32 → bucket 6.
    assert_eq!(Histogram::bucket_index(15), 4);
    assert_eq!(Histogram::bucket_index(16), 5);
    assert_eq!(Histogram::bucket_index(31), 5);
    assert_eq!(Histogram::bucket_index(32), 6);
    match registry.snapshot().get("boundaries") {
        Some(MetricValue::Histogram(buckets)) => {
            assert_eq!(buckets, &vec![0, 0, 0, 0, 1, 2, 1]);
        }
        other => panic!("expected histogram, got {other:?}"),
    }
}

#[test]
fn concurrent_increments_are_lossless_and_deterministic() {
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 10_000;

    let registry = Registry::new();
    let counter = registry.counter("contended");
    let histogram = registry.histogram("contended.sizes");
    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            let counter = counter.clone();
            let histogram = histogram.clone();
            scope.spawn(move || {
                for i in 0..PER_THREAD {
                    counter.add(1);
                    // Every thread observes the same value multiset, so
                    // the merged histogram is interleaving-independent.
                    histogram.observe(i % 100);
                }
            });
        }
    });
    assert_eq!(counter.get(), THREADS * PER_THREAD);
    assert_eq!(histogram.count(), THREADS * PER_THREAD);

    // A second, single-threaded registry observing the same multiset
    // serializes identically — interleaving cannot leak into output.
    let serial = Registry::new();
    serial.counter("contended").add(THREADS * PER_THREAD);
    let sh = serial.histogram("contended.sizes");
    for _ in 0..THREADS {
        for i in 0..PER_THREAD {
            sh.observe(i % 100);
        }
    }
    assert_eq!(snapshot_jsonl(&registry), snapshot_jsonl(&serial));
}
