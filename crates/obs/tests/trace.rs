//! Integration tests for the trace timeline: enable → span → drain →
//! export, cross-thread parenting via `span::inherit`, and the
//! tracing-disabled path recording nothing.
//!
//! Trace collection is process-global state, so every test takes LOCK
//! and drains leftovers before asserting.

use std::sync::Mutex;

use slap_obs::span::{current_path, inherit};
use slap_obs::{parse_object, span, trace, Value};

static LOCK: Mutex<()> = Mutex::new(());

fn paths(events: &[trace::TraceEvent]) -> Vec<&str> {
    let mut v: Vec<&str> = events.iter().map(|e| e.path.as_str()).collect();
    v.sort_unstable();
    v
}

#[test]
fn disabled_tracing_records_nothing() {
    let _guard = LOCK.lock().unwrap();
    trace::set_enabled(false);
    trace::drain();
    {
        let _s = span("trace_test_disabled_outer");
        let _t = span("trace_test_disabled_inner");
    }
    assert!(
        trace::drain().is_empty(),
        "spans must not record events while tracing is off"
    );
}

#[test]
fn enabled_tracing_captures_the_span_tree() {
    let _guard = LOCK.lock().unwrap();
    trace::set_enabled(true);
    trace::drain();
    {
        let _run = span("trace_test_run");
        {
            let _a = span("trace_test_a");
            let _leaf = span("trace_test_leaf");
        }
        let _b = span("trace_test_b");
    }
    trace::set_enabled(false);
    let events = trace::drain();
    assert_eq!(
        paths(&events),
        vec![
            "trace_test_run",
            "trace_test_run/trace_test_a",
            "trace_test_run/trace_test_a/trace_test_leaf",
            "trace_test_run/trace_test_b",
        ]
    );
    // Children fall within their parent's time window.
    let by_path = |p: &str| events.iter().find(|e| e.path == p).unwrap();
    let run = by_path("trace_test_run");
    let leaf = by_path("trace_test_run/trace_test_a/trace_test_leaf");
    assert!(leaf.start_ns >= run.start_ns);
    assert!(leaf.start_ns + leaf.dur_ns <= run.start_ns + run.dur_ns);
}

#[test]
fn worker_spans_parent_under_the_forking_phase() {
    let _guard = LOCK.lock().unwrap();
    trace::set_enabled(true);
    trace::drain();
    {
        let _fork = span("trace_test_fork");
        let parent = current_path();
        std::thread::scope(|scope| {
            for _ in 0..2 {
                let parent = parent.as_deref();
                scope.spawn(move || {
                    let _ctx = inherit(parent);
                    let _work = span("trace_test_work");
                });
            }
        });
    }
    trace::set_enabled(false);
    let events = trace::drain();
    assert_eq!(
        paths(&events),
        vec![
            "trace_test_fork",
            "trace_test_fork/trace_test_work",
            "trace_test_fork/trace_test_work",
        ],
        "both worker spans nest under the forking phase"
    );
    // The workers ran on their own threads (distinct tids from the fork).
    let fork_tid = events
        .iter()
        .find(|e| e.path == "trace_test_fork")
        .unwrap()
        .tid;
    for e in events
        .iter()
        .filter(|e| e.path.ends_with("trace_test_work"))
    {
        assert_ne!(e.tid, fork_tid, "worker events carry the worker's tid");
    }
}

#[test]
fn chrome_export_round_trips_through_the_parser() {
    let _guard = LOCK.lock().unwrap();
    trace::set_enabled(true);
    trace::drain();
    {
        let _run = span("trace_test_export");
        let _child = span("trace_test_export_child");
    }
    trace::set_enabled(false);
    let events = trace::drain();

    let mut json = Vec::new();
    trace::write_chrome_json(&events, &mut json).unwrap();
    let text = String::from_utf8(json).unwrap();
    let fields = parse_object(text.trim()).expect("exporter emits valid JSON");
    let trace_events = fields
        .iter()
        .find(|(k, _)| k == "traceEvents")
        .and_then(|(_, v)| v.as_array())
        .expect("traceEvents array");
    assert_eq!(trace_events.len(), events.len());
    for (value, event) in trace_events.iter().zip(&events) {
        let obj = value.as_object().expect("event object");
        let get = |k: &str| obj.iter().find(|(n, _)| n == k).map(|(_, v)| v);
        assert_eq!(get("ph"), Some(&Value::Str("X".into())));
        assert_eq!(get("name").and_then(|v| v.as_str()), Some(event.name()));
        let args = get("args").and_then(|v| v.as_object()).expect("args");
        assert_eq!(
            args.iter().find(|(n, _)| n == "path").map(|(_, v)| v),
            Some(&Value::Str(event.path.clone()))
        );
    }

    let mut folded = Vec::new();
    trace::write_folded(&events, &mut folded).unwrap();
    let folded = String::from_utf8(folded).unwrap();
    assert!(folded.contains("trace_test_export "));
    assert!(folded.contains("trace_test_export;trace_test_export_child "));
}
