//! Property test: any string — quotes, backslashes, control bytes,
//! non-ASCII, astral-plane characters — survives `escape_into` →
//! `parse_object` unchanged, and whole records round-trip through their
//! JSONL serialization. Uses a deterministic PRNG (no dev-dependencies),
//! so a failure reproduces exactly.

use slap_obs::json::escape_into;
use slap_obs::{parse_object, Record, Value};

/// xorshift64* — deterministic, seedable, no deps.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    /// A random valid `char`, biased toward the troublesome regions:
    /// ASCII punctuation/controls, the escape characters themselves, and
    /// astral-plane code points that need surrogate pairs in JSON.
    fn char(&mut self) -> char {
        match self.below(8) {
            0 => char::from(self.below(0x20) as u8), // C0 controls
            1 => ['"', '\\', '/', '\u{7f}'][self.below(4) as usize],
            2 => char::from(0x20 + self.below(0x5f) as u8), // printable ASCII
            3 => char::from_u32(0x80 + self.below(0x780) as u32).unwrap_or('?'),
            4 => char::from_u32(0x800 + self.below(0xd800 - 0x800) as u32).unwrap_or('?'),
            // BMP above the surrogate range.
            5 => char::from_u32(0xe000 + self.below(0x1000) as u32).unwrap_or('?'),
            // Astral plane: JSON \uXXXX escapes need surrogate pairs here.
            6 => char::from_u32(0x10000 + self.below(0x10000) as u32).unwrap_or('?'),
            _ => ['\u{1F600}', '\u{10FFFF}', '\u{FFFD}', 'é', '中'][self.below(5) as usize],
        }
    }

    fn string(&mut self, max_len: u64) -> String {
        let len = self.below(max_len + 1);
        (0..len).map(|_| self.char()).collect()
    }
}

fn roundtrip(s: &str) -> String {
    let mut json = String::from("{\"k\":\"");
    escape_into(s, &mut json);
    json.push_str("\"}");
    let fields = parse_object(&json).unwrap_or_else(|e| panic!("parse {json:?}: {e:?}"));
    assert_eq!(fields.len(), 1);
    match &fields[0].1 {
        Value::Str(out) => out.clone(),
        other => panic!("expected string, got {other:?}"),
    }
}

#[test]
fn known_nasty_strings_round_trip() {
    for s in [
        "",
        "plain",
        "\"",
        "\\",
        "\\\"\\",
        "a\nb\rc\td",
        "\u{0}\u{1}\u{1f}\u{7f}",
        "naïve — déjà vu",
        "中文字符",
        "\u{1F600}\u{1F680}", // astral plane (surrogate pairs when escaped)
        "\u{FFFD}",
        "trailing backslash\\",
        "\\u0041 looks like an escape but is literal",
        "mixed \" quote \\ slash \n newline \u{1F600} emoji",
    ] {
        assert_eq!(roundtrip(s), s, "string {s:?} must survive the round trip");
    }
}

#[test]
fn random_strings_round_trip() {
    let mut rng = Rng(0x5eed_cafe_f00d_0001);
    for i in 0..2000 {
        let s = rng.string(24);
        assert_eq!(roundtrip(&s), s, "case {i}: {s:?}");
    }
}

#[test]
fn random_records_round_trip_via_jsonl() {
    let mut rng = Rng(0x5eed_cafe_f00d_0002);
    for _ in 0..200 {
        let mut record = Record::new();
        // Keys exercise escaping too (parse_object returns them decoded).
        let n_fields = 1 + rng.below(6);
        for f in 0..n_fields {
            let key = format!("k{f}_{}", rng.string(6));
            match rng.below(4) {
                0 => record.push(&key, rng.string(16)),
                1 => record.push(&key, rng.next()),
                // Negative: non-negative integers parse back as U64.
                2 => record.push(&key, -(rng.below(1 << 40) as i64) - 1),
                _ => record.push(&key, rng.below(2) == 1),
            };
        }
        let line = record.to_json_line();
        let fields = parse_object(&line).unwrap_or_else(|e| panic!("parse {line:?}: {e:?}"));
        assert_eq!(
            fields,
            record.fields().to_vec(),
            "record must survive serialization: {line}"
        );
    }
}
