//! Output sinks for metric [`Record`]s: JSONL for machines, an aligned
//! table for humans, and a null sink for "observability off".

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;

use crate::record::Record;

/// Something records can be emitted to.
pub trait Sink {
    /// Writes one record.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures from the underlying writer.
    fn emit(&mut self, record: &Record) -> io::Result<()>;

    /// Flushes buffered output.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures from the underlying writer.
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Writes each record as one JSON object per line (JSONL).
#[derive(Debug)]
pub struct JsonlSink<W: Write> {
    out: W,
}

impl<W: Write> JsonlSink<W> {
    /// Wraps a writer.
    pub fn new(out: W) -> JsonlSink<W> {
        JsonlSink { out }
    }

    /// Consumes the sink, returning the writer.
    pub fn into_inner(self) -> W {
        self.out
    }
}

impl JsonlSink<BufWriter<File>> {
    /// Creates (truncating) a JSONL file at `path`.
    ///
    /// # Errors
    ///
    /// Propagates file-creation failures.
    pub fn create(path: &Path) -> io::Result<JsonlSink<BufWriter<File>>> {
        Ok(JsonlSink::new(BufWriter::new(File::create(path)?)))
    }
}

impl JsonlSink<Box<dyn Write + Send>> {
    /// Opens a JSONL sink at `path`, where `"-"` means the process'
    /// stdout — serve-style consumers stream records without temp files.
    ///
    /// # Errors
    ///
    /// Propagates file-creation failures.
    pub fn open(path: &str) -> io::Result<JsonlSink<Box<dyn Write + Send>>> {
        Ok(JsonlSink::new(open_writer(path)?))
    }
}

/// Opens `path` for writing, with `"-"` meaning stdout (line-buffered by
/// the standard library, so each record appears as soon as it is
/// emitted). Shared by the metrics and trace outputs.
///
/// # Errors
///
/// Propagates file-creation failures.
pub fn open_writer(path: &str) -> io::Result<Box<dyn Write + Send>> {
    if path == "-" {
        Ok(Box::new(io::stdout()))
    } else {
        Ok(Box::new(BufWriter::new(File::create(Path::new(path))?)))
    }
}

impl<W: Write> Sink for JsonlSink<W> {
    fn emit(&mut self, record: &Record) -> io::Result<()> {
        self.out.write_all(record.to_json_line().as_bytes())?;
        self.out.write_all(b"\n")
    }

    fn flush(&mut self) -> io::Result<()> {
        self.out.flush()
    }
}

/// Writes each record as an aligned `key : value` block for terminals.
#[derive(Debug)]
pub struct TableSink<W: Write> {
    out: W,
    records_emitted: usize,
}

impl<W: Write> TableSink<W> {
    /// Wraps a writer.
    pub fn new(out: W) -> TableSink<W> {
        TableSink {
            out,
            records_emitted: 0,
        }
    }

    /// Consumes the sink, returning the writer.
    pub fn into_inner(self) -> W {
        self.out
    }
}

impl<W: Write> Sink for TableSink<W> {
    fn emit(&mut self, record: &Record) -> io::Result<()> {
        if self.records_emitted > 0 {
            self.out.write_all(b"\n")?;
        }
        self.records_emitted += 1;
        write!(self.out, "{record}")
    }

    fn flush(&mut self) -> io::Result<()> {
        self.out.flush()
    }
}

/// Discards every record — the default when no metrics output was asked
/// for, so instrumented code paths need no conditionals.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullSink;

impl Sink for NullSink {
    fn emit(&mut self, _record: &Record) -> io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Record {
        let mut r = Record::new();
        r.push("circuit", "c17")
            .push("area", 9.5)
            .push("cuts", 12u64);
        r
    }

    #[test]
    fn jsonl_sink_one_line_per_record() {
        let mut out = Vec::new();
        {
            let mut sink = JsonlSink::new(&mut out);
            sink.emit(&sample()).unwrap();
            sink.emit(&sample()).unwrap();
            sink.flush().unwrap();
        }
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0], r#"{"circuit":"c17","area":9.5,"cuts":12}"#);
        assert_eq!(lines[0], lines[1]);
        assert!(text.ends_with('\n'));
    }

    #[test]
    fn table_sink_renders_fields_with_blank_line_between_records() {
        let mut out = Vec::new();
        {
            let mut sink = TableSink::new(&mut out);
            sink.emit(&sample()).unwrap();
            sink.emit(&sample()).unwrap();
        }
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("circuit : \"c17\""));
        assert!(text.contains("\n\n"), "records separated by a blank line");
    }

    #[test]
    fn null_sink_accepts_everything() {
        let mut sink = NullSink;
        sink.emit(&sample()).unwrap();
        sink.flush().unwrap();
    }

    #[test]
    fn jsonl_file_sink_round_trips() {
        let dir = std::env::temp_dir().join("slap_obs_sink_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("metrics.jsonl");
        {
            let mut sink = JsonlSink::create(&path).unwrap();
            sink.emit(&sample()).unwrap();
            sink.flush().unwrap();
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let parsed = crate::json::parse_object(text.trim_end()).unwrap();
        assert_eq!(parsed, sample().fields().to_vec());
        std::fs::remove_file(&path).ok();
    }
}
