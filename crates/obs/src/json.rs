//! Minimal hand-rolled JSON: string escaping for the writer and a small
//! recursive-descent parser for reading JSONL metric lines back (the
//! bench harness diffs metric files across runs; tests round-trip lines).
//!
//! The parser accepts exactly the subset the [`crate::Record`] and trace
//! writers emit — objects (nested ones land as [`Value::Object`]),
//! arrays, strings with `\uXXXX`/short escapes, numbers, booleans, and
//! null — which is a valid subset of RFC 8259.

use crate::record::Value;

/// Escapes `s` into `out` per JSON string rules.
pub fn escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// A JSON parse failure: byte offset plus message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset in the input where parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses one JSON object line into ordered `(key, value)` pairs.
///
/// # Errors
///
/// Returns [`JsonError`] on malformed input or trailing garbage.
pub fn parse_object(input: &str) -> Result<Vec<(String, Value)>, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let fields = p.object()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after object"));
    }
    Ok(fields)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn object(&mut self) -> Result<Vec<(String, Value)>, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(fields);
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(fields),
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn value(&mut self) -> Result<Value, JsonError> {
        match self.peek() {
            Some(b'{') => Ok(Value::Object(self.object()?)),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Value, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Array(items)),
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn literal(&mut self, text: &str, value: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{text}'")))
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let hex = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let hex = std::str::from_utf8(hex).map_err(|_| self.err("non-ascii \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let mut code = self.hex4()?;
                        // Our writer only emits \u00XX, but external JSONL
                        // may carry astral chars as UTF-16 surrogate pairs;
                        // combine a high+low pair, map lone surrogates to
                        // the replacement char.
                        if (0xD800..0xDC00).contains(&code)
                            && self.bytes.get(self.pos) == Some(&b'\\')
                            && self.bytes.get(self.pos + 1) == Some(&b'u')
                        {
                            self.pos += 2;
                            let low = self.hex4()?;
                            if (0xDC00..0xE000).contains(&low) {
                                code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                            } else {
                                out.push('\u{FFFD}');
                                code = low;
                            }
                        }
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                    }
                    _ => return Err(self.err("invalid escape")),
                },
                Some(b) if b < 0x80 => out.push(b as char),
                Some(b) => {
                    // Re-assemble the multi-byte UTF-8 sequence.
                    let start = self.pos - 1;
                    let len = if b >= 0xF0 {
                        4
                    } else if b >= 0xE0 {
                        3
                    } else {
                        2
                    };
                    let slice = self
                        .bytes
                        .get(start..start + len)
                        .ok_or_else(|| self.err("truncated utf-8 sequence"))?;
                    let s = std::str::from_utf8(slice).map_err(|_| self.err("invalid utf-8"))?;
                    out.push_str(s);
                    self.pos = start + len;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut fractional = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    fractional = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if text.is_empty() || text == "-" {
            return Err(self.err("expected digits"));
        }
        if !fractional {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::U64(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Value::I64(v));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Record;

    #[test]
    fn round_trips_a_metrics_line() {
        let mut r = Record::new();
        r.push("circuit", "aes \"mini\"")
            .push("mode", "slap")
            .push("cuts", 123usize)
            .push("delta", -4i64)
            .push("area", 56.25)
            .push("hist", Value::Array(vec![Value::U64(1), Value::U64(2)]))
            .push("ok", true)
            .push("skipped", Value::Null);
        let line = r.to_json_line();
        let parsed = parse_object(&line).expect("parses");
        assert_eq!(parsed, r.fields().to_vec());
    }

    #[test]
    fn escapes_control_characters() {
        let mut out = String::new();
        escape_into("a\nb\t\"c\\\u{1}", &mut out);
        assert_eq!(out, "a\\nb\\t\\\"c\\\\\\u0001");
        let line = format!("{{\"k\":\"{out}\"}}");
        let parsed = parse_object(&line).expect("parses");
        assert_eq!(parsed[0].1, Value::Str("a\nb\t\"c\\\u{1}".to_string()));
    }

    #[test]
    fn parses_unicode_strings() {
        let parsed = parse_object(r#"{"k":"µm² → ps"}"#).expect("parses");
        assert_eq!(parsed[0].1, Value::Str("µm² → ps".to_string()));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse_object("{").is_err());
        assert!(parse_object(r#"{"a":}"#).is_err());
        assert!(parse_object(r#"{"a":1} extra"#).is_err());
        assert!(parse_object(r#"{"a":1,"#).is_err());
        assert!(parse_object("[1,2]").is_err());
        assert!(parse_object(r#"{"a":{"b":1}"#).is_err());
    }

    #[test]
    fn parses_nested_objects() {
        let parsed =
            parse_object(r#"{"events":[{"name":"cover","ts":1.5},{"name":"sta","ts":2}]}"#)
                .expect("parses");
        let events = parsed[0].1.as_array().expect("array");
        assert_eq!(events.len(), 2);
        let first = events[0].as_object().expect("object");
        assert_eq!(first[0].1.as_str(), Some("cover"));
        // Nested objects round-trip through the writer too.
        let mut out = String::new();
        parsed[0].1.write_json(&mut out);
        assert_eq!(out, r#"[{"name":"cover","ts":1.5},{"name":"sta","ts":2}]"#);
    }

    #[test]
    fn surrogate_pairs_combine() {
        let parsed = parse_object(r#"{"k":"😀"}"#).expect("parses");
        assert_eq!(parsed[0].1, Value::Str("\u{1F600}".to_string()));
        let parsed = parse_object("{\"k\":\"\\ud83d\\ude00\"}").expect("parses");
        assert_eq!(parsed[0].1, Value::Str("\u{1F600}".to_string()));
        // Lone surrogates degrade to the replacement char, not an error.
        let parsed = parse_object(r#"{"k":"\ud83d!"}"#).expect("parses");
        assert_eq!(parsed[0].1, Value::Str("\u{FFFD}!".to_string()));
    }

    #[test]
    fn number_types() {
        let parsed =
            parse_object(r#"{"u":18446744073709551615,"i":-3,"f":2.5,"e":1e3}"#).expect("parses");
        assert_eq!(parsed[0].1, Value::U64(u64::MAX));
        assert_eq!(parsed[1].1, Value::I64(-3));
        assert_eq!(parsed[2].1, Value::F64(2.5));
        assert_eq!(parsed[3].1, Value::F64(1e3));
    }

    #[test]
    fn empty_object_and_array() {
        assert_eq!(parse_object("{}").expect("parses"), vec![]);
        let parsed = parse_object(r#"{"a":[]}"#).expect("parses");
        assert_eq!(parsed[0].1, Value::Array(vec![]));
    }
}
