//! Thread-safe metric registry: atomic counters, gauges, log2-bucket
//! histograms, and span timers, snapshotted in deterministic order.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

use crate::record::{Record, Value};

/// A monotonically increasing counter. Cloning shares the underlying
/// atomic, so hot loops can grab a handle once and increment lock-free.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins signed gauge.
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adjusts the gauge by `delta`.
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of log2 buckets: bucket 0 holds zeros, bucket `i ≥ 1` holds
/// values in `[2^(i-1), 2^i - 1]`, up to bucket 64 for `u64::MAX`.
pub const HISTOGRAM_BUCKETS: usize = 65;

#[derive(Debug)]
struct HistogramCore {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

/// A log2-bucket histogram of `u64` observations.
#[derive(Clone, Debug)]
pub struct Histogram(Arc<HistogramCore>);

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram(Arc::new(HistogramCore {
            buckets: [const { AtomicU64::new(0) }; HISTOGRAM_BUCKETS],
        }))
    }
}

impl Histogram {
    /// The bucket index of `v`: 0 for 0, else `⌊log2 v⌋ + 1`.
    pub fn bucket_index(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            64 - v.leading_zeros() as usize
        }
    }

    /// The inclusive `[lo, hi]` value range of bucket `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i ≥ HISTOGRAM_BUCKETS`.
    pub fn bucket_bounds(i: usize) -> (u64, u64) {
        assert!(i < HISTOGRAM_BUCKETS, "bucket out of range");
        if i == 0 {
            (0, 0)
        } else if i == 64 {
            (1u64 << 63, u64::MAX)
        } else {
            (1u64 << (i - 1), (1u64 << i) - 1)
        }
    }

    /// Records one observation.
    pub fn observe(&self, v: u64) {
        self.0.buckets[Self::bucket_index(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.0
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .sum()
    }

    /// Adds `n` observations directly into bucket `i` — the merge path of
    /// [`crate::HistogramShard`].
    pub(crate) fn add_to_bucket(&self, i: usize, n: u64) {
        self.0.buckets[i].fetch_add(n, Ordering::Relaxed);
    }

    /// Bucket counts with trailing empty buckets trimmed.
    pub fn buckets(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self
            .0
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        while v.last() == Some(&0) {
            v.pop();
        }
        v
    }

    /// Estimates the `q`-quantile (`0.0 ≤ q ≤ 1.0`) of the observed
    /// values; see [`quantile_from_buckets`].
    pub fn quantile(&self, q: f64) -> Option<f64> {
        quantile_from_buckets(&self.buckets(), q)
    }
}

/// Estimates the `q`-quantile of a log2-bucket histogram by locating the
/// bucket containing the target rank and interpolating linearly within
/// the bucket's `[lo, hi]` value range. Exact for bucket 0 (zeros) and
/// within a factor of two elsewhere — good enough for the p50/p99
/// summaries `slap-report` prints. Returns `None` for an empty histogram
/// or a `q` outside `[0, 1]`.
pub fn quantile_from_buckets(buckets: &[u64], q: f64) -> Option<f64> {
    if !(0.0..=1.0).contains(&q) || buckets.len() > HISTOGRAM_BUCKETS {
        return None;
    }
    let total: u64 = buckets.iter().sum();
    if total == 0 {
        return None;
    }
    // Rank of the target observation, 1-based, clamped into [1, total].
    let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
    let mut seen = 0u64;
    for (i, &n) in buckets.iter().enumerate() {
        if n == 0 {
            continue;
        }
        if seen + n >= rank {
            let (lo, hi) = Histogram::bucket_bounds(i);
            if lo == hi {
                return Some(lo as f64);
            }
            // Position of the rank inside this bucket, in (0, 1].
            let within = (rank - seen) as f64 / n as f64;
            return Some(lo as f64 + within * (hi - lo) as f64);
        }
        seen += n;
    }
    None
}

#[derive(Debug, Default)]
struct TimerCore {
    count: AtomicU64,
    total_ns: AtomicU64,
}

/// An accumulating duration metric (what spans record into).
#[derive(Clone, Debug, Default)]
pub struct Timer(Arc<TimerCore>);

impl Timer {
    /// Records one duration.
    pub fn record(&self, d: Duration) {
        self.0.count.fetch_add(1, Ordering::Relaxed);
        self.0
            .total_ns
            .fetch_add(d.as_nanos().min(u64::MAX as u128) as u64, Ordering::Relaxed);
    }

    /// Number of recorded durations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded durations in nanoseconds.
    pub fn total_ns(&self) -> u64 {
        self.0.total_ns.load(Ordering::Relaxed)
    }
}

#[derive(Clone, Debug)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
    Timer(Timer),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
            Metric::Timer(_) => "timer",
        }
    }
}

/// A named-metric registry. The process-wide instance is
/// [`Registry::global`]; tests and benches create private instances for
/// interference-free assertions.
#[derive(Debug, Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The process-wide registry every library instrument records into.
    pub fn global() -> &'static Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(Registry::new)
    }

    fn get_or_insert<T: Clone>(
        &self,
        name: &str,
        make: impl FnOnce() -> Metric,
        pick: impl FnOnce(&Metric) -> Option<T>,
    ) -> T {
        let mut metrics = self.metrics.lock().expect("registry poisoned");
        let metric = metrics.entry(name.to_string()).or_insert_with(make);
        pick(metric)
            .unwrap_or_else(|| panic!("metric '{name}' already registered as a {}", metric.kind()))
    }

    /// The counter named `name`, created on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &str) -> Counter {
        self.get_or_insert(
            name,
            || Metric::Counter(Counter::default()),
            |m| match m {
                Metric::Counter(c) => Some(c.clone()),
                _ => None,
            },
        )
    }

    /// The gauge named `name`, created on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.get_or_insert(
            name,
            || Metric::Gauge(Gauge::default()),
            |m| match m {
                Metric::Gauge(g) => Some(g.clone()),
                _ => None,
            },
        )
    }

    /// The histogram named `name`, created on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn histogram(&self, name: &str) -> Histogram {
        self.get_or_insert(
            name,
            || Metric::Histogram(Histogram::default()),
            |m| match m {
                Metric::Histogram(h) => Some(h.clone()),
                _ => None,
            },
        )
    }

    /// The timer named `name`, created on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn timer(&self, name: &str) -> Timer {
        self.get_or_insert(
            name,
            || Metric::Timer(Timer::default()),
            |m| match m {
                Metric::Timer(t) => Some(t.clone()),
                _ => None,
            },
        )
    }

    /// A point-in-time copy of every metric, sorted by name — the
    /// deterministic ordering tests assert against.
    pub fn snapshot(&self) -> Snapshot {
        let metrics = self.metrics.lock().expect("registry poisoned");
        let entries = metrics
            .iter()
            .map(|(name, metric)| {
                let value = match metric {
                    Metric::Counter(c) => MetricValue::Counter(c.get()),
                    Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                    Metric::Histogram(h) => MetricValue::Histogram(h.buckets()),
                    Metric::Timer(t) => MetricValue::Timer {
                        count: t.count(),
                        total_ns: t.total_ns(),
                    },
                };
                (name.clone(), value)
            })
            .collect();
        Snapshot { entries }
    }

    /// Removes every metric. Existing handles keep working but are no
    /// longer reachable from snapshots.
    pub fn clear(&self) {
        self.metrics.lock().expect("registry poisoned").clear();
    }
}

/// A point-in-time metric value.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MetricValue {
    /// Counter total.
    Counter(u64),
    /// Gauge level.
    Gauge(i64),
    /// Histogram bucket counts (trailing zeros trimmed).
    Histogram(Vec<u64>),
    /// Timer aggregate.
    Timer {
        /// Number of recorded spans.
        count: u64,
        /// Summed duration in nanoseconds.
        total_ns: u64,
    },
}

/// A deterministic, name-sorted copy of a registry's metrics.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Snapshot {
    entries: Vec<(String, MetricValue)>,
}

impl Snapshot {
    /// The entries, sorted by metric name.
    pub fn entries(&self) -> &[(String, MetricValue)] {
        &self.entries
    }

    /// Looks up one metric by name.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.entries
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| &self.entries[i].1)
    }

    /// The change since `earlier`: counters, histograms, and timers are
    /// subtracted (saturating); gauges keep their current level. Metrics
    /// absent from `earlier` are reported in full.
    pub fn delta(&self, earlier: &Snapshot) -> Snapshot {
        let entries = self
            .entries
            .iter()
            .map(|(name, value)| {
                let diffed = match (value, earlier.get(name)) {
                    (MetricValue::Counter(now), Some(MetricValue::Counter(then))) => {
                        MetricValue::Counter(now.saturating_sub(*then))
                    }
                    (MetricValue::Histogram(now), Some(MetricValue::Histogram(then))) => {
                        MetricValue::Histogram(
                            now.iter()
                                .enumerate()
                                .map(|(i, n)| n.saturating_sub(then.get(i).copied().unwrap_or(0)))
                                .collect(),
                        )
                    }
                    (
                        MetricValue::Timer { count, total_ns },
                        Some(MetricValue::Timer {
                            count: c0,
                            total_ns: t0,
                        }),
                    ) => MetricValue::Timer {
                        count: count.saturating_sub(*c0),
                        total_ns: total_ns.saturating_sub(*t0),
                    },
                    (v, _) => v.clone(),
                };
                (name.clone(), diffed)
            })
            .collect();
        Snapshot { entries }
    }

    /// Drops timer entries — what the byte-identical determinism tests
    /// compare, since wall-clock durations differ between runs.
    pub fn without_timers(&self) -> Snapshot {
        Snapshot {
            entries: self
                .entries
                .iter()
                .filter(|(_, v)| !matches!(v, MetricValue::Timer { .. }))
                .cloned()
                .collect(),
        }
    }

    /// Flattens the snapshot into a [`Record`] for a sink: counters and
    /// gauges one field each, histograms an array field, timers a
    /// `<name>.count` plus `<name>.ns` pair.
    pub fn to_record(&self) -> Record {
        let mut record = Record::new();
        for (name, value) in &self.entries {
            match value {
                MetricValue::Counter(v) => {
                    record.push(name, *v);
                }
                MetricValue::Gauge(v) => {
                    record.push(name, *v);
                }
                MetricValue::Histogram(buckets) => {
                    record.push(
                        name,
                        Value::Array(buckets.iter().map(|&b| Value::U64(b)).collect()),
                    );
                }
                MetricValue::Timer { count, total_ns } => {
                    record.push(&format!("{name}.count"), *count);
                    record.push(&format!("{name}.ns"), *total_ns);
                }
            }
        }
        record
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gauges_and_lookup() {
        let r = Registry::new();
        r.counter("b").add(2);
        r.counter("a").incr();
        r.gauge("g").set(-5);
        let snap = r.snapshot();
        let names: Vec<&str> = snap.entries().iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["a", "b", "g"], "snapshot must sort by name");
        assert_eq!(snap.get("b"), Some(&MetricValue::Counter(2)));
        assert_eq!(snap.get("g"), Some(&MetricValue::Gauge(-5)));
        assert_eq!(snap.get("zzz"), None);
    }

    #[test]
    fn handles_share_state() {
        let r = Registry::new();
        let c1 = r.counter("x");
        let c2 = r.counter("x");
        c1.add(3);
        c2.add(4);
        assert_eq!(r.counter("x").get(), 7);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_conflicts_panic() {
        let r = Registry::new();
        r.counter("m");
        r.gauge("m");
    }

    #[test]
    fn histogram_bucket_boundaries() {
        // Bucket 0 = {0}; bucket i = [2^(i-1), 2^i - 1].
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(7), 3);
        assert_eq!(Histogram::bucket_index(8), 4);
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
        for i in 0..HISTOGRAM_BUCKETS {
            let (lo, hi) = Histogram::bucket_bounds(i);
            assert_eq!(Histogram::bucket_index(lo), i, "lower bound of bucket {i}");
            assert_eq!(Histogram::bucket_index(hi), i, "upper bound of bucket {i}");
            if i + 1 < HISTOGRAM_BUCKETS {
                assert_eq!(
                    Histogram::bucket_index(hi + 1),
                    i + 1,
                    "first value past bucket {i}"
                );
            }
        }
    }

    #[test]
    fn histogram_observe_and_trim() {
        let h = Histogram::default();
        h.observe(0);
        h.observe(1);
        h.observe(2);
        h.observe(3);
        h.observe(8);
        assert_eq!(h.count(), 5);
        assert_eq!(h.buckets(), vec![1, 1, 2, 0, 1]);
    }

    #[test]
    fn quantiles_interpolate_within_buckets() {
        // Empty histogram and out-of-range q.
        assert_eq!(quantile_from_buckets(&[], 0.5), None);
        assert_eq!(quantile_from_buckets(&[1, 2], 1.5), None);
        assert_eq!(quantile_from_buckets(&[1, 2], -0.1), None);

        // All zeros: every quantile is exactly 0.
        assert_eq!(quantile_from_buckets(&[10], 0.5), Some(0.0));
        assert_eq!(quantile_from_buckets(&[10], 0.99), Some(0.0));

        let h = Histogram::default();
        for v in [0u64, 1, 2, 3, 100, 200, 5000] {
            h.observe(v);
        }
        // p0 hits the smallest observation's bucket (zeros, exact).
        assert_eq!(h.quantile(0.0), Some(0.0));
        // The median (rank 4 of 7) lands in bucket 2 = [2, 3].
        let p50 = h.quantile(0.5).unwrap();
        assert!((2.0..=3.0).contains(&p50), "p50 {p50} in bucket [2,3]");
        // p99 lands in 5000's bucket [4096, 8191].
        let p99 = h.quantile(0.99).unwrap();
        assert!((4096.0..=8191.0).contains(&p99), "p99 {p99}");
        // Interpolation: 4 observations in bucket [8, 15]; the rank-2
        // quantile sits half-way through the bucket.
        let q = quantile_from_buckets(&[0, 0, 0, 0, 4], 0.5).unwrap();
        assert!((q - (8.0 + 0.5 * 7.0)).abs() < 1e-9, "midpoint, got {q}");
    }

    #[test]
    fn timer_accumulates() {
        let t = Timer::default();
        t.record(Duration::from_nanos(100));
        t.record(Duration::from_nanos(250));
        assert_eq!(t.count(), 2);
        assert_eq!(t.total_ns(), 350);
    }

    #[test]
    fn delta_subtracts_and_keeps_gauges() {
        let r = Registry::new();
        r.counter("c").add(10);
        r.gauge("g").set(100);
        r.histogram("h").observe(1);
        let before = r.snapshot();
        r.counter("c").add(5);
        r.gauge("g").set(7);
        r.histogram("h").observe(1);
        r.histogram("h").observe(4);
        let delta = r.snapshot().delta(&before);
        assert_eq!(delta.get("c"), Some(&MetricValue::Counter(5)));
        assert_eq!(delta.get("g"), Some(&MetricValue::Gauge(7)));
        assert_eq!(
            delta.get("h"),
            Some(&MetricValue::Histogram(vec![0, 1, 0, 1]))
        );
    }

    #[test]
    fn snapshot_to_record_flattens_timers() {
        let r = Registry::new();
        r.counter("n").add(1);
        r.timer("t").record(Duration::from_nanos(9));
        let record = r.snapshot().to_record();
        assert_eq!(record.get("n").and_then(|v| v.as_u64()), Some(1));
        assert_eq!(record.get("t.count").and_then(|v| v.as_u64()), Some(1));
        assert_eq!(record.get("t.ns").and_then(|v| v.as_u64()), Some(9));
        // without_timers drops the timing entry entirely.
        let trimmed = r.snapshot().without_timers().to_record();
        assert_eq!(trimmed.get("t.count"), None);
        assert!(trimmed.get("n").is_some());
    }

    #[test]
    fn clear_empties_the_registry() {
        let r = Registry::new();
        r.counter("c").incr();
        r.clear();
        assert!(r.snapshot().entries().is_empty());
    }

    #[test]
    fn concurrent_counters_under_scoped_threads() {
        let r = Registry::new();
        let c = r.counter("racy");
        let h = r.histogram("spread");
        std::thread::scope(|scope| {
            for t in 0..8 {
                let c = c.clone();
                let h = h.clone();
                scope.spawn(move || {
                    for i in 0..1000u64 {
                        c.incr();
                        h.observe(t * 1000 + i);
                    }
                });
            }
        });
        assert_eq!(c.get(), 8000);
        assert_eq!(h.count(), 8000);
    }
}
