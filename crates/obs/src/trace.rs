//! Trace timelines: per-thread, lock-free span event buffers with
//! exporters to Chrome `trace_event` JSON (loadable in Perfetto /
//! `chrome://tracing`) and folded-stacks flamegraph text.
//!
//! Tracing is off by default and costs one relaxed atomic load per span
//! drop (see the `obs_overhead` bench). When enabled — the bins wire it
//! to `--trace-json` / the `SLAP_TRACE` environment variable — every
//! [`crate::Span`] records one [`TraceEvent`] on drop into a
//! thread-local buffer: the hot path never takes a lock and never
//! touches another thread's cache lines. Buffers drain into a shared
//! vector via [`flush_thread`] (workers holding a
//! [`crate::span::ContextGuard`] flush when the guard drops), from the
//! TLS destructor when a thread exits, or when [`drain`] collects the
//! timeline.
//!
//! # Determinism contract
//!
//! The *structure* of a trace — the multiset of span paths, their
//! counts, and the parent/child relations encoded in the paths — is a
//! pure function of the work performed and is identical for every
//! thread count (worker spans inherit the forking phase's path via
//! [`crate::span::inherit`]). Timestamps, durations, thread ids, and
//! event *order* are wall-clock and scheduler artifacts and are NOT
//! deterministic; consumers that diff traces must compare structure
//! only (see DESIGN.md §11).

use std::cell::RefCell;
use std::io::{self, Write};
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

use crate::json::escape_into;

/// One completed span occurrence on the timeline.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Full slash-joined span path (`table2/enumerate`).
    pub path: String,
    /// Small sequential id of the recording thread (first event = 1).
    pub tid: u32,
    /// Start time in nanoseconds since the trace epoch.
    pub start_ns: u64,
    /// Wall-clock duration in nanoseconds.
    pub dur_ns: u64,
}

impl TraceEvent {
    /// The leaf segment of the span path (`enumerate` of `t2/enumerate`).
    pub fn name(&self) -> &str {
        self.path.rsplit('/').next().unwrap_or(&self.path)
    }

    /// The parent span path, if the span was nested.
    pub fn parent(&self) -> Option<&str> {
        self.path.rsplit_once('/').map(|(parent, _)| parent)
    }
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_TID: AtomicU32 = AtomicU32::new(1);
static DRAINED: Mutex<Vec<TraceEvent>> = Mutex::new(Vec::new());

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

struct LocalBuf {
    tid: u32,
    events: Vec<TraceEvent>,
}

impl Drop for LocalBuf {
    fn drop(&mut self) {
        if !self.events.is_empty() {
            let mut shared = DRAINED.lock().expect("trace sink poisoned");
            shared.append(&mut self.events);
        }
    }
}

thread_local! {
    static LOCAL: RefCell<LocalBuf> = RefCell::new(LocalBuf {
        tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
        events: Vec::new(),
    });
}

/// Whether span events are being collected. One relaxed load — this is
/// the whole cost of the tracing-disabled path.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns collection on or off. Enabling pins the trace epoch (t = 0) at
/// the first enable of the process.
pub fn set_enabled(on: bool) {
    if on {
        epoch();
    }
    ENABLED.store(on, Ordering::Relaxed);
}

/// Enables tracing if the `SLAP_TRACE` environment variable is set to a
/// non-empty value other than `0`. Returns whether tracing is on.
pub fn init_from_env() -> bool {
    if let Ok(v) = std::env::var("SLAP_TRACE") {
        if !v.is_empty() && v != "0" {
            set_enabled(true);
        }
    }
    enabled()
}

/// Flushes the calling thread's local buffer into the shared sink.
///
/// Thread-local buffers also flush from their TLS destructor, but
/// `std::thread::scope` returns as soon as each worker's *closure*
/// finishes — TLS destructors may still be running — so anything that
/// must be visible to a post-join [`drain`] has to flush explicitly
/// before the closure returns. [`crate::span::ContextGuard`] does this
/// on drop, which covers every `slap-par` worker.
pub fn flush_thread() {
    LOCAL.with(|buf| {
        let mut buf = buf.borrow_mut();
        if !buf.events.is_empty() {
            let mut shared = DRAINED.lock().expect("trace sink poisoned");
            shared.append(&mut buf.events);
        }
    });
}

/// Records one completed span. Called by [`crate::Span`] on drop when
/// [`enabled`]; `start` is the span's opening instant.
pub(crate) fn record(path: &str, start: Instant, dur: Duration) {
    let start_ns = start
        .checked_duration_since(epoch())
        .unwrap_or(Duration::ZERO)
        .as_nanos()
        .min(u64::MAX as u128) as u64;
    LOCAL.with(|buf| {
        let mut buf = buf.borrow_mut();
        let tid = buf.tid;
        buf.events.push(TraceEvent {
            path: path.to_string(),
            tid,
            start_ns,
            dur_ns: dur.as_nanos().min(u64::MAX as u128) as u64,
        });
    });
}

/// Collects every event recorded so far: buffers already flushed by
/// exited threads plus the calling thread's own buffer. Events from
/// other still-live threads stay in their local buffers until those
/// threads flush ([`flush_thread`]) or exit.
///
/// Returns the events sorted by `(start_ns, tid, path)` so repeated
/// exports of one timeline render identically.
pub fn drain() -> Vec<TraceEvent> {
    let mut events = {
        let mut shared = DRAINED.lock().expect("trace sink poisoned");
        std::mem::take(&mut *shared)
    };
    LOCAL.with(|buf| events.append(&mut buf.borrow_mut().events));
    events.sort_by(|a, b| {
        (a.start_ns, a.tid, a.path.as_str()).cmp(&(b.start_ns, b.tid, b.path.as_str()))
    });
    events
}

/// Serializes events as Chrome `trace_event` JSON (the "JSON Object
/// Format" with complete `ph = "X"` events), loadable in Perfetto and
/// `chrome://tracing`. Timestamps are microseconds with nanosecond
/// precision; the full span path travels in `args.path`.
///
/// # Errors
///
/// Propagates I/O failures from the writer.
pub fn write_chrome_json<W: Write>(events: &[TraceEvent], mut w: W) -> io::Result<()> {
    w.write_all(b"{\"displayTimeUnit\":\"ms\",\"traceEvents\":[")?;
    let mut name = String::new();
    let mut path = String::new();
    for (i, e) in events.iter().enumerate() {
        name.clear();
        escape_into(e.name(), &mut name);
        path.clear();
        escape_into(&e.path, &mut path);
        write!(
            w,
            "{}\n{{\"name\":\"{name}\",\"cat\":\"slap\",\"ph\":\"X\",\"pid\":1,\
             \"tid\":{},\"ts\":{}.{:03},\"dur\":{}.{:03},\"args\":{{\"path\":\"{path}\"}}}}",
            if i == 0 { "" } else { "," },
            e.tid,
            e.start_ns / 1_000,
            e.start_ns % 1_000,
            e.dur_ns / 1_000,
            e.dur_ns % 1_000,
        )?;
    }
    w.write_all(b"\n]}\n")
}

/// Serializes events as folded-stacks flamegraph text: one
/// `seg1;seg2;leaf <self_ns>` line per distinct span path, where the
/// value is the path's *self* time (total minus the time covered by its
/// direct children), so the flamegraph's widths add up correctly.
/// Lines are sorted by path — structure-deterministic output.
///
/// # Errors
///
/// Propagates I/O failures from the writer.
pub fn write_folded<W: Write>(events: &[TraceEvent], mut w: W) -> io::Result<()> {
    use std::collections::BTreeMap;
    let mut totals: BTreeMap<&str, u64> = BTreeMap::new();
    for e in events {
        *totals.entry(e.path.as_str()).or_insert(0) += e.dur_ns;
    }
    // Direct-children sums, keyed by parent path.
    let mut child_ns: BTreeMap<&str, u64> = BTreeMap::new();
    for (&path, &ns) in &totals {
        if let Some((parent, _)) = path.rsplit_once('/') {
            *child_ns.entry(parent).or_insert(0) += ns;
        }
    }
    for (&path, &ns) in &totals {
        let self_ns = ns.saturating_sub(child_ns.get(path).copied().unwrap_or(0));
        writeln!(w, "{} {}", path.replace('/', ";"), self_ns)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_name_and_parent() {
        let e = TraceEvent {
            path: "a/b/c".into(),
            tid: 1,
            start_ns: 0,
            dur_ns: 1,
        };
        assert_eq!(e.name(), "c");
        assert_eq!(e.parent(), Some("a/b"));
        let root = TraceEvent {
            path: "a".into(),
            tid: 1,
            start_ns: 0,
            dur_ns: 1,
        };
        assert_eq!(root.name(), "a");
        assert_eq!(root.parent(), None);
    }

    #[test]
    fn chrome_json_escapes_and_formats_times() {
        let events = vec![TraceEvent {
            path: "pha\"se/in ner".into(),
            tid: 3,
            start_ns: 1_234_567,
            dur_ns: 89,
        }];
        let mut out = Vec::new();
        write_chrome_json(&events, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("\"ts\":1234.567"));
        assert!(text.contains("\"dur\":0.089"));
        assert!(text.contains("\"tid\":3"));
        assert!(text.contains(r#"\"se/in ner"#), "leaf name escaped: {text}");
        let fields = crate::parse_object(text.trim()).expect("valid json");
        let events_field = fields
            .iter()
            .find(|(k, _)| k == "traceEvents")
            .expect("traceEvents");
        assert_eq!(events_field.1.as_array().expect("array").len(), 1);
    }

    #[test]
    fn folded_stacks_subtract_child_time() {
        let ev = |path: &str, dur_ns: u64| TraceEvent {
            path: path.into(),
            tid: 1,
            start_ns: 0,
            dur_ns,
        };
        let events = vec![
            ev("run", 100),
            ev("run/a", 60),
            ev("run/a/x", 10),
            ev("run/b", 25),
        ];
        let mut out = Vec::new();
        write_folded(&events, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(
            lines,
            vec!["run 15", "run;a 50", "run;a;x 10", "run;b 25"],
            "self time = total - direct children, sorted by path"
        );
    }
}
