//! A counting global allocator: the system allocator plus two relaxed
//! atomics, so any binary (or test) that installs it can report
//! cumulative allocation counts and bytes as `alloc.count` /
//! `alloc.bytes` gauges in its metrics records.
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: slap_obs::alloc::CountingAllocator =
//!     slap_obs::alloc::CountingAllocator;
//! ```
//!
//! Totals are monotone (frees are not subtracted): the interesting
//! signal is how much allocator traffic a phase generates, which is what
//! the allocation-budget CI guard and `slap-report`'s cross-run diffs
//! consume. When the allocator is not installed, [`allocations`]
//! reports zeros and the gauges stay at 0.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static COUNT: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);

/// The system allocator with cumulative count/byte accounting.
/// `realloc` counts as one allocation of the new size, matching the
/// pre-existing allocation-budget guard's semantics.
pub struct CountingAllocator;

// SAFETY: defers every allocation to `System`; the atomics never touch
// allocator state and relaxed ordering suffices for monotone totals.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        COUNT.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        COUNT.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

/// Cumulative allocator traffic since process start.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AllocTotals {
    /// Number of `alloc` + `realloc` calls.
    pub count: u64,
    /// Total bytes requested by those calls.
    pub bytes: u64,
}

/// The current totals (zeros unless [`CountingAllocator`] is installed
/// as the process' `#[global_allocator]`).
pub fn allocations() -> AllocTotals {
    AllocTotals {
        count: COUNT.load(Ordering::Relaxed),
        bytes: BYTES.load(Ordering::Relaxed),
    }
}

/// Publishes the current totals as `alloc.count` / `alloc.bytes` gauges
/// in the global registry and returns them — call just before building
/// a metrics record so the fields and the registry agree.
pub fn record_gauges() -> AllocTotals {
    let totals = allocations();
    crate::gauge("alloc.count").set(totals.count.min(i64::MAX as u64) as i64);
    crate::gauge("alloc.bytes").set(totals.bytes.min(i64::MAX as u64) as i64);
    totals
}

#[cfg(test)]
mod tests {
    use super::*;

    // The test binary does not install the allocator, so totals are
    // zero — which is exactly the documented uninstalled behavior; the
    // installed path is exercised by `tests/alloc_budget.rs` at the
    // workspace root.
    #[test]
    fn uninstalled_allocator_reports_zeros_and_sets_gauges() {
        let totals = record_gauges();
        assert_eq!(totals, allocations());
        let snap = crate::Registry::global().snapshot();
        let count = match snap.get("alloc.count") {
            Some(crate::MetricValue::Gauge(v)) => *v,
            other => panic!("expected gauge, got {other:?}"),
        };
        assert_eq!(count as u64, totals.count);
    }
}
