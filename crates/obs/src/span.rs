//! RAII span timers with hierarchical phase nesting.
//!
//! A [`span`] pushes its name onto a thread-local stack, so spans opened
//! while another is alive get slash-joined paths (`map/cover`,
//! `slap/inference`). On drop, the span records its wall-clock duration
//! into a [`Registry::global`] timer keyed by that path — and, when
//! [`crate::trace`] collection is on, one timeline event.
//!
//! The stack is thread-local, so spans opened on a freshly spawned
//! worker would silently lose their ancestry. [`current_path`] +
//! [`inherit`] close that gap: the spawner captures its open path, the
//! worker installs it as ambient context, and every span the worker
//! opens nests under the phase that forked it (`slap-par` does this for
//! all its primitives).

use std::cell::RefCell;
use std::time::{Duration, Instant};

use crate::registry::Registry;

thread_local! {
    static STACK: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

/// Opens a span named `name`, nested under any span already open on this
/// thread. Hold the guard for the duration of the phase:
///
/// ```
/// {
///     let _span = slap_obs::span("doctest_example_phase");
///     // ... phase work ...
/// } // duration recorded into the global registry here
/// let snap = slap_obs::Registry::global().snapshot();
/// assert!(snap.get("doctest_example_phase").is_some());
/// ```
pub fn span(name: &str) -> Span {
    Span::enter(name)
}

/// An open phase timer; see [`span`].
#[derive(Debug)]
pub struct Span {
    path: String,
    start: Instant,
}

impl Span {
    fn enter(name: &str) -> Span {
        let path = STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let path = match stack.last() {
                Some(parent) => format!("{parent}/{name}"),
                None => name.to_string(),
            };
            stack.push(path.clone());
            path
        });
        Span {
            path,
            start: Instant::now(),
        }
    }

    /// The full slash-joined phase path of this span.
    pub fn path(&self) -> &str {
        &self.path
    }

    /// Time elapsed since the span was opened.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }
}

/// The calling thread's innermost open span path, if any — what a
/// parallel primitive captures before spawning workers.
pub fn current_path() -> Option<String> {
    STACK.with(|stack| stack.borrow().last().cloned())
}

/// Installs `parent` (a full span path from [`current_path`]) as the
/// calling thread's ambient context: spans opened while the guard is
/// alive nest under it, exactly as if they had been opened on the
/// spawning thread. `None` is a no-op guard, so call sites can pass
/// a captured `Option` through unconditionally.
///
/// Unlike [`span`], inheriting records no timer and no trace event —
/// the parent's own span (on the spawning thread) already times it.
pub fn inherit(parent: Option<&str>) -> ContextGuard {
    let path = parent.map(|p| {
        let path = p.to_string();
        STACK.with(|stack| stack.borrow_mut().push(path.clone()));
        path
    });
    ContextGuard { path }
}

/// Ambient span context installed by [`inherit`]; removes the inherited
/// path from the thread's stack on drop.
#[derive(Debug)]
pub struct ContextGuard {
    path: Option<String>,
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        // A worker dropping its inherited context is about to return from
        // its closure; `thread::scope` may unblock before this thread's
        // TLS destructors run, so push any trace events to the shared
        // sink now to make them visible to a post-join drain.
        if crate::trace::enabled() {
            crate::trace::flush_thread();
        }
        if let Some(path) = &self.path {
            STACK.with(|stack| {
                let mut stack = stack.borrow_mut();
                match stack.last() {
                    Some(top) if top == path => {
                        stack.pop();
                    }
                    _ => {
                        if let Some(i) = stack.iter().rposition(|p| p == path) {
                            stack.remove(i);
                        }
                    }
                }
            });
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let elapsed = self.start.elapsed();
        STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            // Spans are RAII guards, so drops are LIFO in practice; if a
            // guard was moved and outlived its parent, drop the matching
            // entry rather than corrupting sibling paths.
            match stack.last() {
                Some(top) if *top == self.path => {
                    stack.pop();
                }
                _ => {
                    if let Some(i) = stack.iter().rposition(|p| *p == self.path) {
                        stack.remove(i);
                    }
                }
            }
        });
        Registry::global().timer(&self.path).record(elapsed);
        if crate::trace::enabled() {
            crate::trace::record(&self.path, self.start, elapsed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // These touch the process-global registry, so every name is unique to
    // this module to stay independent of other tests in the binary.

    #[test]
    fn nested_spans_join_paths() {
        {
            let outer = span("span_test_outer");
            assert_eq!(outer.path(), "span_test_outer");
            {
                let inner = span("span_test_inner");
                assert_eq!(inner.path(), "span_test_outer/span_test_inner");
                let deeper = span("span_test_deep");
                assert_eq!(
                    deeper.path(),
                    "span_test_outer/span_test_inner/span_test_deep"
                );
            }
        }
        let snap = Registry::global().snapshot();
        for path in [
            "span_test_outer",
            "span_test_outer/span_test_inner",
            "span_test_outer/span_test_inner/span_test_deep",
        ] {
            match snap.get(path) {
                Some(crate::registry::MetricValue::Timer { count, .. }) => {
                    assert!(*count >= 1, "timer {path} must have recorded");
                }
                other => panic!("expected timer at {path}, got {other:?}"),
            }
        }
    }

    #[test]
    fn sequential_spans_do_not_nest() {
        {
            let _a = span("span_test_seq_a");
        }
        let b = span("span_test_seq_b");
        assert_eq!(b.path(), "span_test_seq_b");
    }

    #[test]
    fn repeated_spans_accumulate() {
        for _ in 0..3 {
            let _s = span("span_test_repeat");
        }
        let snap = Registry::global().snapshot();
        match snap.get("span_test_repeat") {
            Some(crate::registry::MetricValue::Timer { count, .. }) => {
                assert_eq!(*count, 3);
            }
            other => panic!("expected timer, got {other:?}"),
        }
    }

    #[test]
    fn inherit_nests_spans_under_the_captured_path() {
        let outer = span("span_test_inherit_outer");
        let captured = current_path();
        assert_eq!(captured.as_deref(), Some("span_test_inherit_outer"));
        std::thread::scope(|scope| {
            let captured = captured.as_deref();
            scope.spawn(move || {
                assert_eq!(current_path(), None, "fresh thread starts empty");
                let _ctx = inherit(captured);
                let child = span("span_test_inherit_child");
                assert_eq!(
                    child.path(),
                    "span_test_inherit_outer/span_test_inherit_child"
                );
                drop(child);
                drop(_ctx);
                assert_eq!(current_path(), None, "guard restores the stack");
            });
        });
        drop(outer);
        // The inherited context recorded no timer of its own, but the
        // worker's child did, under the joined path.
        let snap = Registry::global().snapshot();
        assert!(snap
            .get("span_test_inherit_outer/span_test_inherit_child")
            .is_some());
    }

    #[test]
    fn inherit_none_is_a_noop() {
        {
            let _ctx = inherit(None);
            let s = span("span_test_inherit_none");
            assert_eq!(s.path(), "span_test_inherit_none");
        }
        assert_eq!(current_path(), None);
    }

    #[test]
    fn out_of_order_drop_keeps_stack_consistent() {
        let a = span("span_test_ooo_a");
        let b = span("span_test_ooo_b");
        drop(a);
        // `b`'s entry must survive `a`'s removal so a new child still
        // nests under it.
        let c = span("span_test_ooo_c");
        assert_eq!(c.path(), "span_test_ooo_a/span_test_ooo_b/span_test_ooo_c");
        drop(c);
        drop(b);
        let fresh = span("span_test_ooo_fresh");
        assert_eq!(fresh.path(), "span_test_ooo_fresh");
    }
}
