//! Run provenance: the `run_manifest` record every metrics JSONL stream
//! opens with, so any file is self-describing and machine-comparable
//! (which binary produced it, under what config, over which inputs).
//!
//! The manifest is a plain flat [`Record`] (`event = "run_manifest"`)
//! built through [`RunManifest`]; input identity travels as FNV-1a
//! content hashes ([`content_hash_hex`]) of canonical serializations, so
//! the hash of a circuit or library is bit-stable across thread counts,
//! cache modes, and hosts. Field-by-field schema: DESIGN.md §11.

use crate::record::{Record, Value};

/// The `event` value of a manifest record.
pub const MANIFEST_EVENT: &str = "run_manifest";

/// Bumped whenever a manifest field changes meaning; consumers should
/// refuse to diff manifests with different schema versions.
pub const MANIFEST_SCHEMA_VERSION: u64 = 1;

/// FNV-1a 64-bit hash of `bytes` — the content-hash primitive. Stable by
/// construction: no seeds, no pointer identity, byte-order independent
/// of the host.
pub fn content_hash(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// [`content_hash`] rendered as the fixed-width hex string manifests
/// carry (`"a1b2..."`, 16 chars).
pub fn content_hash_hex(bytes: &[u8]) -> String {
    format!("{:016x}", content_hash(bytes))
}

/// Chains several already-hashed inputs into one combined hash — used
/// for multi-circuit runs, where the manifest carries one hash over the
/// whole input set (order-sensitive, like the run itself).
pub fn combine_hashes<I: IntoIterator<Item = u64>>(hashes: I) -> u64 {
    let mut bytes = Vec::new();
    for h in hashes {
        bytes.extend_from_slice(&h.to_le_bytes());
    }
    content_hash(&bytes)
}

/// Builder for the `run_manifest` record. Field order is fixed by the
/// call sequence, so a fixed build sequence yields byte-identical
/// manifest lines modulo the values themselves.
#[derive(Clone, Debug)]
pub struct RunManifest {
    record: Record,
}

impl RunManifest {
    /// Starts a manifest for `bin`: pushes `event`, `schema_version`,
    /// `bin`, the crate version, and `host_cpus`.
    pub fn new(bin: &str) -> RunManifest {
        let mut record = Record::new();
        record.push("event", MANIFEST_EVENT);
        record.push("schema_version", MANIFEST_SCHEMA_VERSION);
        record.push("bin", bin);
        record.push("slap_version", env!("CARGO_PKG_VERSION"));
        record.push(
            "host_cpus",
            std::thread::available_parallelism().map_or(1usize, |n| n.get()),
        );
        RunManifest { record }
    }

    /// Records the effective worker-thread count.
    pub fn threads(mut self, n: usize) -> RunManifest {
        self.record.push("threads", n);
        self
    }

    /// Records whether session memoization is active (the `SLAP_CACHE`
    /// toggle; `None` reads the environment the way the pipeline does).
    pub fn cache(mut self, enabled: Option<bool>) -> RunManifest {
        let on = enabled.unwrap_or_else(|| std::env::var("SLAP_CACHE").map_or(true, |v| v != "0"));
        self.record.push("cache", on);
        self
    }

    /// Records whether trace collection is on for this run.
    pub fn trace(mut self) -> RunManifest {
        self.record.push("trace", crate::trace::enabled());
        self
    }

    /// Records the mapping target (`"asic"`, `"lut:6"`, …) so ASIC and
    /// LUT metrics streams can never be diffed against each other
    /// silently (`slap-report --check` gates on this field).
    pub fn target(mut self, name: &str) -> RunManifest {
        self.record.push("target", name);
        self
    }

    /// Records the inference kernel tier (`"f32"`, `"int8"`) so metrics
    /// from the bit-identical f32 tier and the QoR-equivalent int8 tier
    /// can never be diffed against each other silently (`slap-report
    /// --check` gates on this field; absent means `"f32"`, the tier of
    /// every run predating it).
    pub fn kernel(mut self, name: &str) -> RunManifest {
        self.record.push("kernel", name);
        self
    }

    /// Records the pre-mapping optimization pipeline spec
    /// (`"strash,fold,sweep,balance"`, or `"none"` for opt-off) so
    /// metrics over optimized and raw subject graphs can never be
    /// diffed against each other silently (`slap-report --check` gates
    /// on this field; absent means `"none"`, the pipeline of every run
    /// predating it).
    pub fn passes(mut self, spec: &str) -> RunManifest {
        self.record.push("passes", spec);
        self
    }

    /// Appends one free-form config field (policy, k, seed, scale, …).
    pub fn config(mut self, key: &str, value: impl Into<Value>) -> RunManifest {
        self.record.push(key, value);
        self
    }

    /// Appends a content hash under `<name>_hash` (e.g. `circuit_hash`).
    pub fn input_hash(mut self, name: &str, hash: u64) -> RunManifest {
        self.record
            .push(&format!("{name}_hash"), format!("{hash:016x}"));
        self
    }

    /// Finishes the builder.
    pub fn into_record(self) -> Record {
        self.record
    }
}

/// Whether a parsed JSONL line is a manifest record.
pub fn is_manifest(fields: &[(String, Value)]) -> bool {
    fields
        .first()
        .is_some_and(|(k, v)| k == "event" && v.as_str() == Some(MANIFEST_EVENT))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(content_hash(b""), 0xcbf29ce484222325);
        assert_eq!(content_hash(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(content_hash(b"foobar"), 0x85944171f73967e8);
        assert_eq!(content_hash_hex(b"foobar"), "85944171f73967e8");
    }

    #[test]
    fn combine_is_order_sensitive() {
        let ab = combine_hashes([1u64, 2]);
        let ba = combine_hashes([2u64, 1]);
        assert_ne!(ab, ba);
        assert_eq!(ab, combine_hashes([1u64, 2]));
    }

    #[test]
    fn manifest_record_shape() {
        let rec = RunManifest::new("table2")
            .threads(4)
            .cache(Some(true))
            .trace()
            .target("lut:6")
            .kernel("int8")
            .passes("strash,balance")
            .config("seed", 1u64)
            .input_hash("circuit", 0xabcd)
            .input_hash("library", 7)
            .into_record();
        let line = rec.to_json_line();
        let fields = crate::parse_object(&line).expect("valid json");
        assert!(is_manifest(&fields));
        let get = |k: &str| fields.iter().find(|(n, _)| n == k).map(|(_, v)| v);
        assert_eq!(get("bin").and_then(|v| v.as_str()), Some("table2"));
        assert_eq!(
            get("schema_version").and_then(|v| v.as_u64()),
            Some(MANIFEST_SCHEMA_VERSION)
        );
        assert_eq!(get("threads").and_then(|v| v.as_u64()), Some(4));
        assert_eq!(get("target").and_then(|v| v.as_str()), Some("lut:6"));
        assert_eq!(get("kernel").and_then(|v| v.as_str()), Some("int8"));
        assert_eq!(
            get("passes").and_then(|v| v.as_str()),
            Some("strash,balance")
        );
        assert_eq!(
            get("circuit_hash").and_then(|v| v.as_str()),
            Some("000000000000abcd")
        );
        assert_eq!(
            get("library_hash").and_then(|v| v.as_str()),
            Some("0000000000000007")
        );
        assert!(get("host_cpus").and_then(|v| v.as_u64()).expect("cpus") >= 1);
    }

    #[test]
    fn non_manifest_lines_are_rejected() {
        let fields = crate::parse_object(r#"{"event":"epoch","epoch":1}"#).expect("parses");
        assert!(!is_manifest(&fields));
        let fields = crate::parse_object(r#"{"circuit":"c17"}"#).expect("parses");
        assert!(!is_manifest(&fields));
    }
}
