//! Per-worker metric shards: plain (non-atomic) local accumulators that
//! fold into a shared [`Counter`] / [`Histogram`] when flushed or dropped.
//!
//! Parallel kernels hand each worker its own shard so the hot path is a
//! plain integer add — no atomics, no locks, no cache-line ping-pong.
//! Because counters and histogram buckets are merged by addition (a
//! commutative, associative operation on `u64`), the shared totals are
//! identical for any thread count and any flush order, which keeps the
//! byte-exact JSONL determinism guarantees of the registry intact.

use crate::registry::{Counter, Histogram, HISTOGRAM_BUCKETS};

/// A single-threaded shard of a [`Counter`]. Increments are plain `u64`
/// adds; the accumulated total is added to the shared counter on
/// [`flush`](CounterShard::flush) or drop.
#[derive(Debug)]
pub struct CounterShard {
    local: u64,
    target: Counter,
}

impl CounterShard {
    /// A zeroed shard feeding `target`.
    pub fn new(target: Counter) -> CounterShard {
        CounterShard { local: 0, target }
    }

    /// Adds `n` locally (no synchronization).
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.local += n;
    }

    /// Adds one locally.
    #[inline]
    pub fn incr(&mut self) {
        self.local += 1;
    }

    /// The not-yet-flushed local total.
    pub fn pending(&self) -> u64 {
        self.local
    }

    /// Folds the local total into the shared counter and resets it.
    pub fn flush(&mut self) {
        if self.local != 0 {
            self.target.add(self.local);
            self.local = 0;
        }
    }
}

impl Drop for CounterShard {
    fn drop(&mut self) {
        self.flush();
    }
}

/// A single-threaded shard of a [`Histogram`]: a plain bucket array with
/// the same log2 layout, merged into the shared histogram on
/// [`flush`](HistogramShard::flush) or drop.
#[derive(Debug)]
pub struct HistogramShard {
    buckets: [u64; HISTOGRAM_BUCKETS],
    target: Histogram,
}

impl HistogramShard {
    /// A zeroed shard feeding `target`.
    pub fn new(target: Histogram) -> HistogramShard {
        HistogramShard {
            buckets: [0; HISTOGRAM_BUCKETS],
            target,
        }
    }

    /// Records one observation locally (no synchronization).
    #[inline]
    pub fn observe(&mut self, v: u64) {
        self.buckets[Histogram::bucket_index(v)] += 1;
    }

    /// The not-yet-flushed number of local observations.
    pub fn pending(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Folds the local buckets into the shared histogram and resets them.
    pub fn flush(&mut self) {
        for (i, count) in self.buckets.iter_mut().enumerate() {
            if *count != 0 {
                self.target.add_to_bucket(i, *count);
                *count = 0;
            }
        }
    }
}

impl Drop for HistogramShard {
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    #[test]
    fn counter_shard_flushes_on_drop() {
        let r = Registry::new();
        let c = r.counter("sharded");
        {
            let mut s = CounterShard::new(c.clone());
            s.add(5);
            s.incr();
            assert_eq!(s.pending(), 6);
            assert_eq!(c.get(), 0, "nothing shared before flush");
        }
        assert_eq!(c.get(), 6);
    }

    #[test]
    fn counter_shard_explicit_flush_resets() {
        let r = Registry::new();
        let c = r.counter("sharded");
        let mut s = CounterShard::new(c.clone());
        s.add(3);
        s.flush();
        assert_eq!(c.get(), 3);
        assert_eq!(s.pending(), 0);
        drop(s);
        assert_eq!(c.get(), 3, "drop after flush adds nothing");
    }

    #[test]
    fn histogram_shard_merges_same_buckets_as_direct_observe() {
        let direct = Histogram::default();
        let shared = Histogram::default();
        let mut shard = HistogramShard::new(shared.clone());
        for v in [0u64, 1, 2, 3, 8, 1000, u64::MAX] {
            direct.observe(v);
            shard.observe(v);
        }
        assert_eq!(shard.pending(), 7);
        drop(shard);
        assert_eq!(shared.buckets(), direct.buckets());
        assert_eq!(shared.count(), 7);
    }

    #[test]
    fn sharded_registry_snapshot_jsonl_is_byte_identical_to_sequential() {
        use crate::{JsonlSink, Sink};

        // Sequential reference: every bump goes straight to the registry.
        let seq = Registry::new();
        let c = seq.counter("cuts.enumerated");
        let h = seq.histogram("cuts.per_node");
        for v in 0..600u64 {
            c.add(v % 7);
            h.observe(v);
        }
        // Sharded run: the same bumps split across 3 workers' shards.
        let par = Registry::new();
        let pc = par.counter("cuts.enumerated");
        let ph = par.histogram("cuts.per_node");
        std::thread::scope(|scope| {
            for w in 0..3u64 {
                let mut cs = CounterShard::new(pc.clone());
                let mut hs = HistogramShard::new(ph.clone());
                scope.spawn(move || {
                    for v in (200 * w)..(200 * (w + 1)) {
                        cs.add(v % 7);
                        hs.observe(v);
                    }
                });
            }
        });
        let render = |r: &Registry| {
            let mut out = Vec::new();
            JsonlSink::new(&mut out)
                .emit(&r.snapshot().to_record())
                .expect("emit");
            out
        };
        assert_eq!(render(&par), render(&seq));
    }

    #[test]
    fn shards_from_many_workers_merge_to_the_sequential_totals() {
        let r = Registry::new();
        let c = r.counter("work");
        let h = r.histogram("sizes");
        std::thread::scope(|scope| {
            for w in 0..4u64 {
                let mut cs = CounterShard::new(c.clone());
                let mut hs = HistogramShard::new(h.clone());
                scope.spawn(move || {
                    for i in 0..250 {
                        cs.incr();
                        hs.observe(w * 250 + i);
                    }
                });
            }
        });
        assert_eq!(c.get(), 1000);
        assert_eq!(h.count(), 1000);
        // The merged histogram equals a sequential pass over 0..1000.
        let seq = Histogram::default();
        for v in 0..1000u64 {
            seq.observe(v);
        }
        assert_eq!(h.buckets(), seq.buckets());
    }
}
