//! Per-run metric records: ordered key/value maps with hand-rolled JSON
//! serialization.

use crate::json::escape_into;

/// A metric value. The numeric variants cover everything the pipeline
/// reports; `Array` exists for histograms and `Null` for non-finite
/// floats (JSON has no NaN/Infinity).
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// Unsigned integer (counters, sizes).
    U64(u64),
    /// Signed integer (gauges).
    I64(i64),
    /// Finite float (areas, delays, seconds).
    F64(f64),
    /// String (circuit names, modes).
    Str(String),
    /// Boolean flag.
    Bool(bool),
    /// Nested array (histogram buckets).
    Array(Vec<Value>),
    /// Nested object (trace-event documents; metrics lines stay flat).
    Object(Vec<(String, Value)>),
    /// JSON null (also what non-finite floats serialize as).
    Null,
}

impl Value {
    /// Serializes the value as JSON into `out`.
    pub fn write_json(&self, out: &mut String) {
        match self {
            Value::U64(v) => {
                out.push_str(&v.to_string());
            }
            Value::I64(v) => {
                out.push_str(&v.to_string());
            }
            Value::F64(v) => {
                if v.is_finite() {
                    // Rust's shortest round-trip Display is valid JSON for
                    // finite values.
                    out.push_str(&v.to_string());
                } else {
                    out.push_str("null");
                }
            }
            Value::Str(s) => {
                out.push('"');
                escape_into(s, out);
                out.push('"');
            }
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_json(out);
                }
                out.push(']');
            }
            Value::Object(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    escape_into(k, out);
                    out.push_str("\":");
                    v.write_json(out);
                }
                out.push('}');
            }
            Value::Null => out.push_str("null"),
        }
    }

    /// The value as an `f64`, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::U64(v) => Some(*v as f64),
            Value::I64(v) => Some(*v as f64),
            Value::F64(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is an unsigned (or non-negative
    /// signed) integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(v) => Some(*v),
            Value::I64(v) if *v >= 0 => Some(*v as u64),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The value as nested object fields, if it is one.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Value {
        Value::U64(v)
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Value {
        Value::U64(v as u64)
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Value {
        Value::U64(v as u64)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::I64(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::F64(v)
    }
}

impl From<f32> for Value {
    fn from(v: f32) -> Value {
        Value::F64(v as f64)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Str(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl std::fmt::Display for Value {
    /// The value's JSON rendering (strings quoted) — what both the
    /// table form and report output show.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut rendered = String::new();
        self.write_json(&mut rendered);
        f.write_str(&rendered)
    }
}

/// One observation record: an insertion-ordered list of named values,
/// serialized as a single JSONL line or a human-readable table block.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Record {
    fields: Vec<(String, Value)>,
}

impl Record {
    /// An empty record.
    pub fn new() -> Record {
        Record::default()
    }

    /// Appends a field. Insertion order is preserved on output, so a
    /// fixed push sequence yields byte-identical lines across runs.
    pub fn push(&mut self, key: &str, value: impl Into<Value>) -> &mut Record {
        self.fields.push((key.to_string(), value.into()));
        self
    }

    /// The fields in insertion order.
    pub fn fields(&self) -> &[(String, Value)] {
        &self.fields
    }

    /// Looks a field up by key (first match).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// Whether the record has no fields.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Serializes the record as one JSON object (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut out = String::with_capacity(self.fields.len() * 24 + 2);
        out.push('{');
        for (i, (k, v)) in self.fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            escape_into(k, &mut out);
            out.push_str("\":");
            v.write_json(&mut out);
        }
        out.push('}');
        out
    }
}

impl std::fmt::Display for Record {
    /// Aligned `key : value` lines — the human-readable table form.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let width = self.fields.iter().map(|(k, _)| k.len()).max().unwrap_or(0);
        for (k, v) in &self.fields {
            let mut rendered = String::new();
            v.write_json(&mut rendered);
            writeln!(f, "  {k:<width$} : {rendered}")?;
        }
        Ok(())
    }
}

impl FromIterator<(String, Value)> for Record {
    fn from_iter<T: IntoIterator<Item = (String, Value)>>(iter: T) -> Record {
        Record {
            fields: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_line_shape_and_order() {
        let mut r = Record::new();
        r.push("b", 1u64)
            .push("a", -2i64)
            .push("f", 0.5)
            .push("s", "x\"y");
        assert_eq!(r.to_json_line(), r#"{"b":1,"a":-2,"f":0.5,"s":"x\"y"}"#);
    }

    #[test]
    fn non_finite_floats_become_null() {
        let mut r = Record::new();
        r.push("nan", f64::NAN).push("inf", f64::INFINITY);
        assert_eq!(r.to_json_line(), r#"{"nan":null,"inf":null}"#);
    }

    #[test]
    fn arrays_and_bools() {
        let mut r = Record::new();
        r.push(
            "h",
            Value::Array(vec![Value::U64(1), Value::U64(0), Value::U64(3)]),
        );
        r.push("ok", true);
        assert_eq!(r.to_json_line(), r#"{"h":[1,0,3],"ok":true}"#);
    }

    #[test]
    fn get_and_accessors() {
        let mut r = Record::new();
        r.push("n", 7usize).push("name", "aes");
        assert_eq!(r.get("n").and_then(Value::as_u64), Some(7));
        assert_eq!(r.get("name").and_then(Value::as_str), Some("aes"));
        assert_eq!(r.get("missing"), None);
        assert_eq!(r.len(), 2);
        assert!(!r.is_empty());
    }

    #[test]
    fn display_renders_every_field() {
        let mut r = Record::new();
        r.push("area", 12.5).push("cuts", 99u64);
        let text = format!("{r}");
        assert!(text.contains("area"));
        assert!(text.contains("12.5"));
        assert!(text.contains("cuts"));
    }
}
