//! Zero-dependency observability for the SLAP reproduction.
//!
//! Every crate in the workspace reports what it does through this one:
//! the mapper times its phases, cut enumeration counts what it prunes,
//! and the training loop reports epochs — all without a single external
//! dependency, in keeping with the workspace policy (see DESIGN.md §3).
//!
//! Three layers:
//!
//! * **Spans** ([`span`]) — RAII wall-clock timers that nest into
//!   hierarchical phase paths (`map/cover`, `slap/inference`, …). On
//!   drop, a span records its duration into the global [`Registry`].
//! * **Metrics** ([`Registry`]) — thread-safe atomic [`Counter`]s,
//!   [`Gauge`]s, and log2-bucket [`Histogram`]s behind a global
//!   `OnceLock` registry. [`Registry::snapshot`] returns entries in
//!   deterministic (sorted) order so tests can assert on output.
//!   Parallel kernels use per-worker [`CounterShard`]s /
//!   [`HistogramShard`]s — plain local accumulators merged by addition
//!   at join, so the hot path never touches an atomic.
//! * **Sinks** ([`Sink`]) — a human-readable [`TableSink`] and a
//!   hand-rolled [`JsonlSink`] (no serde) that the bench harness writes
//!   per-run [`Record`]s to and can parse back ([`json::parse_object`])
//!   to diff across runs.
//!
//! On top of those sit three run-level facilities:
//!
//! * **Trace timelines** ([`trace`]) — opt-in per-thread span event
//!   buffers exported as Chrome `trace_event` JSON (Perfetto) or
//!   folded-stacks flamegraph text. Off by default; one relaxed atomic
//!   load per span when disabled.
//! * **Run manifests** ([`manifest`]) — the `run_manifest` record every
//!   metrics stream opens with: crate version, host, thread count,
//!   cache mode, config, and FNV-1a content hashes of the inputs.
//! * **Allocation accounting** ([`alloc`]) — an optional counting
//!   global allocator surfacing `alloc.count` / `alloc.bytes` gauges.
//!
//! # Example
//!
//! ```
//! use slap_obs::{Record, Registry, Sink, JsonlSink, Value};
//!
//! // Process-wide counters, snapshotted in deterministic order.
//! let local = Registry::new();
//! local.counter("cuts.enumerated").add(42);
//! local.histogram("cuts.per_node").observe(17);
//! let snap = local.snapshot();
//! assert_eq!(snap.entries()[0].0, "cuts.enumerated");
//!
//! // Per-run records, serialized as one JSON object per line.
//! let mut record = Record::new();
//! record.push("circuit", "aes_mini");
//! record.push("area_um2", 1234.5);
//! let mut out = Vec::new();
//! JsonlSink::new(&mut out).emit(&record).unwrap();
//! assert_eq!(
//!     String::from_utf8(out).unwrap(),
//!     "{\"circuit\":\"aes_mini\",\"area_um2\":1234.5}\n"
//! );
//! ```

pub mod alloc;
pub mod json;
pub mod manifest;
pub mod record;
pub mod registry;
pub mod shard;
pub mod sink;
pub mod span;
pub mod trace;

pub use json::{parse_object, JsonError};
pub use manifest::{content_hash, content_hash_hex, RunManifest};
pub use record::{Record, Value};
pub use registry::{
    quantile_from_buckets, Counter, Gauge, Histogram, MetricValue, Registry, Snapshot, Timer,
};
pub use shard::{CounterShard, HistogramShard};
pub use sink::{open_writer, JsonlSink, NullSink, Sink, TableSink};
pub use span::{span, Span};
pub use trace::TraceEvent;

/// Shorthand for a counter in the global registry.
pub fn counter(name: &str) -> Counter {
    Registry::global().counter(name)
}

/// Shorthand for a gauge in the global registry.
pub fn gauge(name: &str) -> Gauge {
    Registry::global().gauge(name)
}

/// Shorthand for a histogram in the global registry.
pub fn histogram(name: &str) -> Histogram {
    Registry::global().histogram(name)
}
