//! The full SLAP flow on a real benchmark: generate training data from
//! random-shuffle mappings of two 16-bit adders, train the CNN cut
//! classifier, then map the c6288-style 16×16 multiplier with all three
//! policies and compare.
//!
//! Run with:
//!   cargo run --release --example slap_flow

use slap::cell::asap7_mini;
use slap::circuits::arith::{carry_lookahead_adder, ripple_carry_adder};
use slap::circuits::iscas::c6288_like;
use slap::core::{train_slap_model, PipelineConfig, SampleConfig, SlapConfig, SlapMapper};
use slap::cuts::CutConfig;
use slap::map::{MapOptions, Mapper};
use slap::ml::{CnnConfig, TrainConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let library = asap7_mini();
    let mapper = Mapper::new(&library, MapOptions::default());

    // 1. Train on the paper's two adder architectures (§V-A).
    println!("== training (random-shuffle maps of rc16 + cla16) ==");
    let circuits = vec![ripple_carry_adder(16), carry_lookahead_adder(16)];
    let config = PipelineConfig {
        sample: SampleConfig {
            maps: 60,
            ..SampleConfig::default()
        },
        train: TrainConfig {
            epochs: 10,
            ..TrainConfig::default()
        },
        model: CnnConfig {
            filters: 64,
            ..CnnConfig::paper()
        },
        model_seed: 1,
    };
    let (model, report) = train_slap_model(&circuits, &mapper, &config);
    println!(
        "  {} samples; val 10-class {:.1}%, binarised {:.1}%",
        report.train_samples + report.val_samples,
        report.val_accuracy * 100.0,
        report.val_binary_accuracy * 100.0
    );

    // 2. Map the multiplier three ways.
    let target = c6288_like();
    println!(
        "\n== mapping {} ({} ANDs) ==",
        target.name(),
        target.num_ands()
    );
    let cut_config = CutConfig::default();
    let abc = mapper.map_default(&target, &cut_config)?;
    let unlimited = mapper.map_unlimited(&target, &cut_config, 1000)?;
    let slap = SlapMapper::new(&mapper, model, SlapConfig::default());
    let (slap_nl, stats) = slap.map(&target)?;
    assert!(slap_nl.verify_against(&target, 8, 7));

    println!(
        "  {:<14} {:>10} {:>10} {:>10}",
        "mode", "area µm²", "delay ps", "cuts"
    );
    for (name, nl) in [
        ("abc-default", &abc),
        ("abc-unlimited", &unlimited),
        ("slap", &slap_nl),
    ] {
        println!(
            "  {:<14} {:>10.1} {:>10.1} {:>10}",
            name,
            nl.area(),
            nl.delay(),
            nl.stats().cuts_considered
        );
    }
    println!(
        "\nSLAP scored {} cuts, kept {} ({} nodes fell back to the trivial cut)",
        stats.cuts_scored, stats.cuts_kept, stats.nodes_all_bad
    );
    Ok(())
}
