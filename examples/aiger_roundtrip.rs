//! Interoperability example: export a generated benchmark to binary
//! AIGER (the format ABC and the EPFL suite use), read it back, check
//! equivalence, and map the re-imported graph.
//!
//! Run with:
//!   cargo run --release --example aiger_roundtrip

use slap::aig::aiger::{read_aiger, write_ascii, write_binary};
use slap::aig::sim::random_equiv_check;
use slap::cell::asap7_mini;
use slap::circuits::arith::barrel_shifter;
use slap::cuts::CutConfig;
use slap::map::{MapOptions, Mapper};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let aig = barrel_shifter(32);
    println!("generated {}: {} ANDs", aig.name(), aig.num_ands());

    // Binary AIGER round-trip (what you would feed to/take from ABC).
    let mut binary = Vec::new();
    write_binary(&aig, &mut binary)?;
    println!("binary AIGER: {} bytes", binary.len());
    let back = read_aiger(&binary[..])?;
    assert!(
        random_equiv_check(&aig, &back, 16, 1),
        "round trip must preserve function"
    );
    println!("round-trip equivalence verified");

    // ASCII AIGER, for eyeballing.
    let mut ascii = Vec::new();
    write_ascii(&aig, &mut ascii)?;
    let text = String::from_utf8(ascii)?;
    println!("\nfirst lines of the aag file:");
    for line in text.lines().take(5) {
        println!("  {line}");
    }

    // The re-imported graph maps like the original.
    let library = asap7_mini();
    let mapper = Mapper::new(&library, MapOptions::default());
    let netlist = mapper.map_default(&back, &CutConfig::default())?;
    println!(
        "\nmapped re-imported graph: area {:.1} µm², delay {:.1} ps, {} gates",
        netlist.area(),
        netlist.delay(),
        netlist.instances().len()
    );
    Ok(())
}
