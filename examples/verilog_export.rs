//! Map a benchmark and export the result as structural Verilog plus the
//! library it targets as genlib — the hand-off artifacts a downstream
//! P&R / simulation flow consumes.
//!
//! Run with:
//!   cargo run --release --example verilog_export

use slap::cell::asap7_mini;
use slap::circuits::arith::carry_lookahead_adder;
use slap::cuts::CutConfig;
use slap::map::{write_verilog, MapOptions, Mapper};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let aig = carry_lookahead_adder(16);
    let library = asap7_mini();
    let mapper = Mapper::new(&library, MapOptions::default());
    let netlist = mapper.map_default(&aig, &CutConfig::default())?;
    assert!(netlist.verify_against(&aig, 16, 1));

    let mut verilog = Vec::new();
    write_verilog(&netlist, "cla16", &mut verilog)?;
    let verilog = String::from_utf8(verilog)?;
    println!(
        "// {} gates, {:.1} µm², {:.1} ps",
        netlist.instances().len(),
        netlist.area(),
        netlist.delay()
    );
    // Print the first and last lines of the module.
    for line in verilog.lines().take(12) {
        println!("{line}");
    }
    println!("  ...");
    for line in verilog
        .lines()
        .rev()
        .take(4)
        .collect::<Vec<_>>()
        .iter()
        .rev()
    {
        println!("{line}");
    }

    // The target library in genlib form, for the consuming flow.
    let genlib = library.to_genlib();
    println!("\n# library ({} cells); first entries:", library.len());
    for line in genlib.lines().take(4) {
        println!("{line}");
    }
    Ok(())
}
