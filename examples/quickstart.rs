//! Quickstart: build a tiny AIG, map it onto the bundled ASAP7-flavoured
//! library with ABC's default cut heuristic, and print the result.
//!
//! Run with:
//!   cargo run --release --example quickstart

use slap::aig::Aig;
use slap::cell::asap7_mini;
use slap::cuts::CutConfig;
use slap::map::{MapOptions, Mapper};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 4-bit ripple-carry adder built by hand from the AIG API.
    let mut aig = Aig::new();
    let a = aig.add_pis(4);
    let b = aig.add_pis(4);
    let mut carry = slap::aig::Lit::FALSE;
    for i in 0..4 {
        let axb = aig.xor(a[i], b[i]);
        let sum = aig.xor(axb, carry);
        carry = aig.maj(a[i], b[i], carry);
        aig.add_po(sum);
    }
    aig.add_po(carry);
    println!(
        "AIG: {} PIs, {} POs, {} ANDs, depth {}",
        aig.num_pis(),
        aig.num_pos(),
        aig.num_ands(),
        aig.depth()
    );

    // Map it.
    let library = asap7_mini();
    let mapper = Mapper::new(&library, MapOptions::default());
    let netlist = mapper.map_default(&aig, &CutConfig::default())?;

    println!("\nmapped netlist:");
    println!("  area  : {:.2} µm²", netlist.area());
    println!("  delay : {:.2} ps", netlist.delay());
    println!("  cuts considered: {}", netlist.stats().cuts_considered);
    println!("  gates:");
    let mut counts: Vec<(String, usize)> = netlist.gate_counts().into_iter().collect();
    counts.sort();
    for (name, n) in counts {
        println!("    {name:<10} x{n}");
    }

    // The mapped netlist is functionally equivalent to the AIG.
    assert!(netlist.verify_against(&aig, 32, 42));
    println!("\nfunctional equivalence verified (32 x 64 random patterns)");
    Ok(())
}
