//! Fig. 1-style design-space exploration on a RISC-V datapath: map the
//! same circuit many times with randomly shuffled cut lists and watch
//! the QoR scatter that motivates learning a better filtering policy.
//!
//! Run with:
//!   cargo run --release --example design_space

use slap::cell::asap7_mini;
use slap::circuits::riscv::rv32_datapath;
use slap::cuts::CutConfig;
use slap::map::{MapOptions, Mapper};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let aig = rv32_datapath();
    println!(
        "circuit: {} ({} ANDs, depth {})",
        aig.name(),
        aig.num_ands(),
        aig.depth()
    );

    let library = asap7_mini();
    let mapper = Mapper::new(&library, MapOptions::default());
    let cut_config = CutConfig::default();

    let reference = mapper.map_default(&aig, &cut_config)?;
    println!(
        "default heuristic: area {:.1} µm², delay {:.1} ps\n",
        reference.area(),
        reference.delay()
    );

    println!(
        "{:>4} {:>10} {:>10} {:>9} {:>8} {:>8}",
        "seed", "area µm²", "delay ps", "cuts", "Δarea%", "Δdelay%"
    );
    let mut best_delay = f32::INFINITY;
    let mut worst_delay = 0f32;
    for seed in 0..24u64 {
        let nl = mapper.map_shuffled(&aig, &cut_config, seed, 6)?;
        best_delay = best_delay.min(nl.delay());
        worst_delay = worst_delay.max(nl.delay());
        println!(
            "{:>4} {:>10.1} {:>10.1} {:>9} {:>+8.1} {:>+8.1}",
            seed,
            nl.area(),
            nl.delay(),
            nl.stats().cuts_considered,
            (nl.area() / reference.area() - 1.0) * 100.0,
            (nl.delay() / reference.delay() - 1.0) * 100.0
        );
    }
    println!(
        "\nrandom filtering swings delay across {:.1}% of the default — the\nspread SLAP's learned policy navigates",
        (worst_delay - best_delay) / reference.delay() * 100.0
    );
    Ok(())
}
