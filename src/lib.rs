//! # SLAP — Supervised Learning Approach for Priority-cuts technology mapping
//!
//! A from-scratch Rust reproduction of the DAC 2021 paper
//! *"SLAP: A Supervised Learning Approach for Priority Cuts Technology
//! Mapping"* (Lau Neto, Moreira, Li, Amarù, Yu, Gaillardon).
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`aig`] — And-Inverter Graph substrate (strashing, simulation, AIGER).
//! * [`cuts`] — k-feasible cut enumeration and the sorting/filtering
//!   policies the paper studies.
//! * [`cell`] — standard-cell library, Boolean matching index, the
//!   bundled ASAP7-flavoured library.
//! * [`map`] — the ABC-style ASIC technology mapper and STA.
//! * [`ml`] — the from-scratch CNN (conv → dense → softmax, Adam).
//! * [`circuits`] — generators for the paper's 14 benchmark circuits.
//! * [`core`] — SLAP itself: embeddings, dataset generation, the
//!   three-band filtering policy, and the end-to-end [`core::SlapMapper`].
//! * [`opt`] — pre-mapping AIG optimization: the `strash`, `fold`,
//!   `sweep`, `balance` pass pipeline behind the `--passes` flag.
//! * [`par`] — deterministic scoped-thread parallelism (`SLAP_THREADS`,
//!   `par_map`/`par_chunks_mut`/`par_levels`).
//!
//! # Quickstart
//!
//! ```
//! use slap::aig::Aig;
//! use slap::cell::asap7_mini;
//! use slap::map::{MapOptions, Mapper};
//! use slap::cuts::CutConfig;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut aig = Aig::new();
//! let a = aig.add_pi();
//! let b = aig.add_pi();
//! let f = aig.xor(a, b);
//! aig.add_po(f);
//!
//! let library = asap7_mini();
//! let mapper = Mapper::new(&library, MapOptions::default());
//! let netlist = mapper.map_default(&aig, &CutConfig::default())?;
//! assert!(netlist.area() > 0.0);
//! # Ok(())
//! # }
//! ```

pub use slap_aig as aig;
pub use slap_cell as cell;
pub use slap_circuits as circuits;
pub use slap_core as core;
pub use slap_cuts as cuts;
pub use slap_map as map;
pub use slap_ml as ml;
pub use slap_opt as opt;
pub use slap_par as par;
